"""Segment-store tests: format, recovery, concurrency, cache facade.

Covers the tentpole storage engine directly (round-trips, rollover,
index rebuilds, torn-tail crash recovery, two-process admission,
compaction) and the :class:`ResultCache` behaviors layered on it
(layout autodetection, loose-file fallback, migration both ways,
query filters, stat, and the ``__len__``-after-``gc`` resync).
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Engine, RunSpec
from repro.engine.cache import (
    CACHE_LAYOUTS,
    DEFAULT_LAYOUT,
    ResultCache,
    detect_layout,
)
from repro.engine.store import (
    FOOTER_DIGEST,
    INDEX_NAME,
    MAGIC,
    SegmentStore,
)
from repro.timing.stats import RunStats

BENCH = "gsm_encode"


def _digest(i: int) -> str:
    # i+1: the all-zero digest is the reserved footer sentinel
    return "%064x" % (i + 1)


def _payload(i: int) -> dict:
    return {"value": i, "tag": f"record-{i}"}


def _fill(store: SegmentStore, count: int, start: int = 0) -> None:
    store.append_many((_digest(i), _payload(i))
                      for i in range(start, start + count))


# --- round trips & persistence -----------------------------------------------


def test_store_round_trip_and_reopen(tmp_path):
    with SegmentStore(tmp_path) as store:
        _fill(store, 20)
        assert len(store) == 20
        assert _digest(3) in store
        assert store.get(_digest(3)) == _payload(3)
        assert store.get("f" * 64) is None
        many = store.get_many([_digest(i) for i in range(0, 25, 5)])
        assert many == {_digest(i): _payload(i) for i in range(0, 20, 5)}
    with SegmentStore(tmp_path) as reopened:
        assert len(reopened) == 20
        assert dict(reopened.scan()) == \
            {_digest(i): _payload(i) for i in range(20)}


def test_store_first_writer_wins_and_footer_digest_refused(tmp_path):
    with SegmentStore(tmp_path) as store:
        assert store.append(_digest(0), {"v": "first"})
        assert not store.append(_digest(0), {"v": "second"})
        assert store.get(_digest(0)) == {"v": "first"}
        assert not store.append(FOOTER_DIGEST, {"v": "sneaky"})
        assert FOOTER_DIGEST not in store
        assert store.append_many(
            [(_digest(1), {"v": 1}), (_digest(1), {"v": "dup"}),
             (_digest(2), {"v": 2})]) == [_digest(1), _digest(2)]


def test_store_rollover_seals_segments(tmp_path):
    with SegmentStore(tmp_path, max_segment_bytes=512) as store:
        _fill(store, 30)
        stat = store.stat()
        assert stat["records"] == 30
        assert stat["segments"] > 1
        # every non-active segment is sealed by a footer
        assert stat["sealed"] >= stat["segments"] - 1
    with SegmentStore(tmp_path) as reopened:
        assert len(reopened) == 30
        assert reopened.get(_digest(29)) == _payload(29)


def test_store_index_rebuild_after_deletion(tmp_path):
    with SegmentStore(tmp_path, max_segment_bytes=512) as store:
        _fill(store, 30)
    (tmp_path / INDEX_NAME).unlink()
    with SegmentStore(tmp_path) as rebuilt:
        assert len(rebuilt) == 30
        assert rebuilt.get(_digest(17)) == _payload(17)


def test_store_stale_index_tail_scan(tmp_path):
    store = SegmentStore(tmp_path)
    _fill(store, 5)
    store.flush()  # index knows exactly 5 records
    _fill(store, 5, start=5)  # appended but never re-flushed
    # crash: drop the store without close() (data was written through)
    del store
    with SegmentStore(tmp_path) as recovered:
        assert len(recovered) == 10
        assert recovered.get(_digest(7)) == _payload(7)


def test_store_torn_tail_recovery(tmp_path):
    with SegmentStore(tmp_path) as store:
        _fill(store, 8)
        (name,) = [n for n in store._segments]
    path = tmp_path / name
    (tmp_path / INDEX_NAME).unlink()  # force a full rescan
    with open(path, "ab") as fh:  # a partial frame from a dead writer
        fh.write(b"\xff\x00\x01torn-frame-gibberish")
    with SegmentStore(tmp_path) as recovered:
        assert len(recovered) == 8  # everything before the tear
        assert recovered.get(_digest(7)) == _payload(7)
        # appends after recovery land in a fresh segment and survive
        recovered.append(_digest(100), _payload(100))
    with SegmentStore(tmp_path) as again:
        assert len(again) == 9


def test_store_truncated_mid_record_drops_only_the_tail(tmp_path):
    with SegmentStore(tmp_path) as store:
        _fill(store, 4)
        ref = store.index[_digest(3)]
    (tmp_path / INDEX_NAME).unlink()
    path = tmp_path / ref[0]
    os.truncate(path, ref[1] + 10)  # cut into the last record
    with SegmentStore(tmp_path) as recovered:
        assert sorted(recovered.digests()) == \
            sorted(_digest(i) for i in range(3))


def test_store_foreign_files_left_alone(tmp_path):
    foreign = tmp_path / "seg-999999.seg"
    foreign.write_bytes(b"NOTASEGM" + b"x" * 100)
    with SegmentStore(tmp_path) as store:
        _fill(store, 3)
        assert len(store) == 3
        store.append(_digest(50), _payload(50))  # forces dead weight? no
        dead, _ = store.compact()
    assert foreign.read_bytes().startswith(b"NOTASEGM")
    with SegmentStore(tmp_path) as reopened:
        assert len(reopened) == 4


def test_store_compact_drops_duplicates_dry_run_matches(tmp_path):
    with SegmentStore(tmp_path, max_segment_bytes=512) as store:
        _fill(store, 20)
    # a second writer re-appends overlapping digests into its own
    # segments (as after a racy dual-process run with a cold index)
    (tmp_path / INDEX_NAME).unlink()
    with open(tmp_path / "seg-900000.seg", "wb") as fh:
        from repro.engine.store import _dumps, _frame
        fh.write(MAGIC)
        for i in range(5):
            fh.write(_frame(_digest(i), _dumps({"v": "loser"})))
    with SegmentStore(tmp_path) as store:
        assert len(store) == 20
        # name order makes the original segments win the tie
        assert store.get(_digest(0)) == _payload(0)
        dry = store.compact(dry_run=True)
        real = store.compact()
        assert dry == real
        assert real[0] == 5  # five duplicate frames dropped
        assert real[1] > 0
        stat = store.stat()
        assert stat == {"records": 20, "segments": 1, "bytes": stat["bytes"],
                        "sealed": 1}
        assert dict(store.scan()) == \
            {_digest(i): _payload(i) for i in range(20)}
        assert store.compact() == (0, 0)  # already tight: no-op


def test_store_stat_counts_without_reads(tmp_path):
    with SegmentStore(tmp_path, max_segment_bytes=512) as store:
        _fill(store, 12)
        stat = store.stat()
        assert stat["records"] == 12
        on_disk = sum((tmp_path / n).stat().st_size
                      for n in store._segments)
        assert stat["bytes"] == on_disk
        assert store.record_sizes()[_digest(0)] > 72


# --- property: random interleavings vs a dict oracle -------------------------


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(ops=st.lists(st.tuples(
    st.sampled_from(["put", "put_many", "reopen", "compact", "flush"]),
    st.lists(st.integers(min_value=0, max_value=40),
             min_size=1, max_size=6)), max_size=25))
def test_store_matches_dict_oracle(tmp_path, ops):
    # one fresh directory per hypothesis example (tmp_path is reused)
    import tempfile
    root = Path(tempfile.mkdtemp(dir=tmp_path)) / "store"
    serial = 0
    oracle: dict[str, dict] = {}
    store = SegmentStore(root, max_segment_bytes=2048)
    try:
        for op, keys in ops:
            if op == "put":
                digest = _digest(keys[0])
                payload = {"n": serial, "k": keys[0]}
                serial += 1
                wrote = store.append(digest, payload)
                assert wrote == (digest not in oracle)
                oracle.setdefault(digest, payload)
            elif op == "put_many":
                items = []
                for key in keys:
                    items.append((_digest(key), {"n": serial, "k": key}))
                    serial += 1
                fresh = store.append_many(items)
                expect_fresh = []
                for digest, payload in items:
                    if digest not in oracle and digest not in expect_fresh:
                        expect_fresh.append(digest)
                        oracle[digest] = payload
                assert fresh == expect_fresh
            elif op == "reopen":
                store.close()
                store = SegmentStore(root, max_segment_bytes=2048)
            elif op == "compact":
                store.compact()
            else:
                store.flush()
            assert len(store) == len(oracle)
        assert store.get_many(list(oracle)) == oracle
        store.close()
        store = SegmentStore(root)
        assert dict(store.scan()) == oracle
    finally:
        store.close()


# --- two-process concurrent admission ----------------------------------------


def _writer_process(directory: str, start: int, count: int,
                    queue) -> None:
    with SegmentStore(directory) as store:
        fresh = store.append_many(
            (_digest(i), {"writer": start, "i": i})
            for i in range(start, start + count))
    queue.put((start, len(fresh)))


def test_store_two_process_writers_never_interleave(tmp_path):
    """Two processes write overlapping ranges into one directory; each
    claims its own ``O_EXCL`` segment, so every record lands exactly
    once per writer and a rebuild keeps one winner per digest."""
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    procs = [ctx.Process(target=_writer_process,
                         args=(str(tmp_path), start, 40, queue))
             for start in (0, 20)]  # digests 20..39 overlap
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    written = dict(queue.get(timeout=5) for _ in procs)
    # overlapping digests (20..39) may land twice — once per writer,
    # as duplicate frames in separate segments — or once, when the
    # slower writer happened to open after the faster one flushed its
    # index; never fewer than each writer's 20 exclusive digests
    assert 20 <= written[0] <= 40 and 20 <= written[20] <= 40
    duplicates = written[0] + written[20] - 60
    assert duplicates >= 0
    with SegmentStore(tmp_path) as store:
        assert sorted(store.digests()) == \
            sorted(_digest(i) for i in range(60))
        for digest, payload in store.scan():
            assert _digest(payload["i"]) == digest
        # compaction squeezes out whatever duplicate frames the race
        # left behind (a no-op when the writers fully serialized)
        dead, reclaimed = store.compact()
        assert dead == duplicates
        assert (reclaimed > 0) == (duplicates > 0)
        assert len(store) == 60
        assert dict(store.scan())[_digest(25)]["i"] == 25


# --- ResultCache over the store ----------------------------------------------


def _spec(i: int) -> RunSpec:
    return RunSpec(benchmark=BENCH, coding=("mmx", "mom", "mom3d")[i % 3],
                   memsys="vector", l2_latency=10 + i, warm=bool(i % 2))


def _stats(i: int) -> RunStats:
    stats = RunStats(name=f"r{i}")
    stats.cycles = 1000 + i
    stats.instructions = 500 + i
    return stats


def test_cache_layout_detection_and_default(tmp_path):
    assert DEFAULT_LAYOUT == "segment"
    assert detect_layout(tmp_path / "missing") is None
    cache = ResultCache(tmp_path, version="v1")
    assert cache.layout == "segment"
    cache.put(_spec(0), _stats(0))
    cache.flush()
    assert detect_layout(tmp_path / "v1") == "segment"
    filecache = ResultCache(tmp_path, version="v2", layout="file")
    filecache.put(_spec(0), _stats(0))
    assert detect_layout(tmp_path / "v2") == "file"
    # auto keeps what a directory already uses
    assert ResultCache(tmp_path, version="v2").layout == "file"
    assert ResultCache(tmp_path, version="v1").layout == "segment"
    with pytest.raises(ValueError, match="unknown cache layout"):
        ResultCache(tmp_path, version="v3", layout="columnar")
    assert CACHE_LAYOUTS == ("auto", "file", "segment")


@pytest.mark.parametrize("layout", ["file", "segment"])
def test_cache_bulk_round_trip(tmp_path, layout):
    cache = ResultCache(tmp_path, version="v1", layout=layout)
    pairs = [(_spec(i), _stats(i)) for i in range(8)]
    assert cache.put_many(pairs) == 8
    assert cache.put_many(pairs[:3]) == 0  # first writer wins
    assert len(cache) == 8
    found = cache.get_many([spec for spec, _ in pairs] + [_spec(99)])
    assert set(found) == {spec for spec, _ in pairs}
    for spec, stats in pairs:
        assert found[spec].to_dict() == stats.to_dict()


def test_cache_loose_file_fallback_in_segment_dir(tmp_path):
    filecache = ResultCache(tmp_path, version="v1", layout="file")
    filecache.put(_spec(0), _stats(0))
    # a segment-layout cache over the same dir still reads the loose
    # entry (mid-migration state), counts it, and queries through it
    cache = ResultCache(tmp_path, version="v1", layout="segment")
    assert cache.get(_spec(0)).to_dict() == _stats(0).to_dict()
    cache.put(_spec(1), _stats(1))
    assert len(cache) == 2
    assert cache.get_many([_spec(0), _spec(1)]).keys() == \
        {_spec(0), _spec(1)}
    assert cache.stat()["entries"] == 2


@pytest.mark.parametrize("layout", ["file", "segment"])
def test_cache_query_filters(tmp_path, layout):
    cache = ResultCache(tmp_path, version="v1", layout=layout)
    cache.put_many([(_spec(i), _stats(i)) for i in range(9)])
    everything = cache.query()
    assert len(everything) == 9
    mom = cache.query(coding="mom")
    assert {spec.coding for spec, _ in mom} == {"mom"}
    assert len(cache.query(coding="mom", warm=True)) == \
        sum(1 for spec, _ in mom if spec.warm)
    assert cache.query(l2_latency=10)[0][0].l2_latency == 10
    assert cache.query(benchmark="nope") == []
    assert len(cache.query(limit=4)) == 4
    one = cache.query(coding="mom3d", limit=1)
    assert one[0][1].to_dict() == \
        dict(cache.query(coding="mom3d")[0][1].to_dict())


def test_cache_migrate_round_trip(tmp_path):
    cache = ResultCache(tmp_path, version="v1", layout="file")
    pairs = [(_spec(i), _stats(i)) for i in range(6)]
    cache.put_many(pairs)
    summary = cache.migrate(to="segment")
    assert summary["migrated"] == 6 and summary["skipped"] == 0
    assert summary["from"] == "file" and summary["to"] == "segment"
    assert cache.layout == "segment"
    assert not list((tmp_path / "v1").glob("0*.json"))
    for spec, stats in pairs:
        assert cache.get(spec).to_dict() == stats.to_dict()
    back = cache.migrate(to="file")
    assert back["migrated"] == 6
    assert detect_layout(tmp_path / "v1") == "file"
    fresh = ResultCache(tmp_path, version="v1")
    assert fresh.layout == "file"
    for spec, stats in pairs:
        assert fresh.get(spec).to_dict() == stats.to_dict()


def test_cache_migrate_skips_unreadable_entries(tmp_path):
    cache = ResultCache(tmp_path, version="v1", layout="file")
    cache.put(_spec(0), _stats(0))
    (tmp_path / "v1" / ("b" * 64 + ".json")).write_text("{corrupt")
    summary = cache.migrate(to="segment")
    assert summary == {"version": "v1", "from": "file", "to": "segment",
                       "migrated": 1, "skipped": 1}
    # the unreadable file stays in place rather than being destroyed
    assert (tmp_path / "v1" / ("b" * 64 + ".json")).exists()


@pytest.mark.parametrize("layout", ["file", "segment"])
def test_cache_len_resyncs_after_gc(tmp_path, layout):
    """Regression: the file layout's incremental counter used to go
    stale after ``gc`` — ``len`` reported entries gc had removed."""
    cache = ResultCache(tmp_path, version="v-new", layout=layout)
    cache.put_many([(_spec(i), _stats(i)) for i in range(4)])
    assert len(cache) == 4  # primes the incremental counter
    old = ResultCache(tmp_path, version="v-old", layout=layout)
    old.put_many([(_spec(i), _stats(i)) for i in range(3)])
    old.flush()
    del old
    # external writer appears mid-session: len must resync after gc
    extra = ResultCache(tmp_path, version="v-new", layout=layout)
    extra.put(_spec(10), _stats(10))
    extra.flush()
    removed, reclaimed = cache.gc()
    assert removed >= 3 and reclaimed > 0
    assert not (tmp_path / "v-old").exists()
    assert len(cache) == 5 == cache.refresh_count()
    assert cache.stat()["entries"] == 5


@pytest.mark.parametrize("layout", ["file", "segment"])
def test_cache_gc_dry_run_reports_real_bytes(tmp_path, layout):
    cache = ResultCache(tmp_path, version="v-new", layout=layout)
    cache.put(_spec(0), _stats(0))
    old = ResultCache(tmp_path, version="v-old", layout=layout)
    old.put_many([(_spec(i), _stats(i)) for i in range(5)])
    old.flush()
    del old
    dry = cache.gc(dry_run=True)
    assert (tmp_path / "v-old").is_dir()  # dry run touched nothing
    real = cache.gc()
    assert dry == real
    assert not (tmp_path / "v-old").exists()
    total = sum(entry.size for entry in cache.entries(labels=False))
    assert cache.stat()["bytes"] >= total


def test_cache_entry_sizes_account_for_every_byte(tmp_path):
    cache = ResultCache(tmp_path, version="v1", layout="segment")
    cache.put_many([(_spec(i), _stats(i)) for i in range(5)])
    cache.flush()
    entries = cache.entries(labels=False)
    assert len(entries) == 5
    assert all(entry.size > 72 for entry in entries)
    assert all(entry.path.suffix == ".seg" for entry in entries)
    labeled = cache.entries()
    assert all(entry.label.startswith(BENCH) for entry in labeled)


def test_engine_cache_layout_threads_through(tmp_path):
    engine = Engine(cache_dir=tmp_path, cache_layout="file")
    assert engine.cache.layout == "file"
    spec = engine.spec(BENCH, "mom", "ideal")
    engine.run(spec)
    assert (tmp_path / engine.cache.version /
            f"{spec.digest()}.json").exists()
    segmented = Engine(cache_dir=tmp_path / "seg")
    assert segmented.cache.layout == "segment"
    segmented.run(spec)
    segmented.cache.flush()
    assert list((tmp_path / "seg" / segmented.cache.version)
                .glob("*.seg"))
