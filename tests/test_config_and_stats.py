"""Configuration validation and run-statistics edge coverage."""

import pytest

from repro.errors import ConfigError
from repro.isa import ElemType, ExecClass, Opcode, ProgramBuilder, r, v
from repro.memsys import HierarchyConfig
from repro.timing import (
    MemSysConfig,
    ProcessorConfig,
    ideal_memsys,
    mmx_processor,
    mom3d_processor,
    mom_processor,
    multibank_memsys,
    simulate,
    vector_memsys,
)
from repro.timing.stats import RunStats, VecLenStats


# --- configuration validation -------------------------------------------------


def test_processor_config_rejects_bad_isa():
    with pytest.raises(ConfigError):
        ProcessorConfig(name="x", isa="avx")


def test_memsys_config_rejects_bad_kind():
    with pytest.raises(ConfigError):
        MemSysConfig(name="x", kind="scratchpad")


def test_table2_constants():
    mmx, mom = mmx_processor(), mom_processor()
    assert (mmx.fetch_width, mmx.window, mmx.lsq) == (8, 128, 32)
    assert (mmx.simd_issue, mmx.simd_fus, mmx.simd_lanes) == (4, 4, 1)
    assert (mom.simd_issue, mom.simd_fus, mom.simd_lanes) == (1, 1, 4)
    assert (mmx.mem_issue, mom.mem_issue) == (4, 2)
    assert (mmx.l1_ports, mom.l1_ports) == (4, 2)


def test_mom3d_differs_from_mom_only_in_isa():
    mom, m3d = mom_processor(), mom3d_processor()
    assert m3d.isa == "mom3d" and mom.isa == "mom"
    assert m3d.simd_lanes == mom.simd_lanes
    assert m3d.extra_vector_regs == mom.extra_vector_regs


def test_memsys_factories_name_latency_variants():
    assert vector_memsys().name == "vector"
    assert vector_memsys(60).name == "vector-l60"
    assert multibank_memsys(40).name == "multibank-l40"
    assert ideal_memsys().hierarchy.l2_latency == 1


def test_hierarchy_config_defaults_are_papers():
    cfg = HierarchyConfig()
    assert cfg.l2_size == 2 * 1024 * 1024
    assert cfg.l2_line == 128
    assert cfg.l2_latency == 20
    assert cfg.l1_line == 32


def test_memsys_build_is_fresh_per_call():
    cfg = vector_memsys()
    h1, p1, l1 = cfg.build()
    h2, p2, l2 = cfg.build()
    assert h1 is not h2 and p1 is not p2 and l1 is not l2


# --- run statistics --------------------------------------------------------------


def _small_run():
    b = ProgramBuilder("stats-test")
    b.setvl(4)
    b.li(r(1), 3)
    b.vld(v(0), ea=0x1000, stride=8, etype=ElemType.U8)
    b.simd(Opcode.PADDB, v(1), v(0), v(0), etype=ElemType.U8)
    b.vst(v(1), ea=0x2000, stride=8, etype=ElemType.U8)
    b.branch()
    return simulate(b.program, mom_processor(), vector_memsys())


def test_by_class_and_opcode_histograms():
    stats = _small_run()
    assert stats.by_class[ExecClass.VMEM] == 2
    assert stats.by_class[ExecClass.SIMD] == 1
    assert stats.by_opcode[Opcode.VLD] == 1
    assert stats.instructions == 6


def test_store_words_accounted():
    stats = _small_run()
    assert stats.vector_port.words_stored == 4
    assert stats.vector_port.words_loaded == 4


def test_summary_and_ipc():
    stats = _small_run()
    assert 0 < stats.ipc < 8
    text = stats.summary()
    assert "stats-test" in text and "IPC" in text


def test_veclen_empty_defaults():
    veclen = VecLenStats()
    assert veclen.dim1 == veclen.dim2 == veclen.dim3 == 0.0


def test_veclen_slice_counting_resets_per_load():
    veclen = VecLenStats()
    veclen.record_dvload3(0, 8, 8)
    for _ in range(5):
        veclen.record_dvmov3(0)
    veclen.record_dvload3(0, 8, 8)
    for _ in range(3):
        veclen.record_dvmov3(0)
    assert veclen.dim3 == pytest.approx(4.0)  # 8 slices / 2 loads
    assert veclen.max_slices_per_load == 5


def test_runstats_effective_bandwidth_zero_when_idle():
    stats = RunStats()
    assert stats.effective_bandwidth == 0.0
    assert stats.ipc == 0.0


def test_mmx_programs_reject_setvl_free_vector_ops():
    """MMX config routes vl=1 media ops through the L1 path only."""
    b = ProgramBuilder()
    b.vld(v(0), ea=0x1000, stride=8, vl=1)
    stats = simulate(b.program, mmx_processor(), vector_memsys())
    assert stats.vector_port.requests == 0
    assert stats.l1_port.requests == 1


def test_branch_consumes_fetch_but_no_fu():
    b = ProgramBuilder()
    for _ in range(8):
        b.branch()
    stats = simulate(b.program, mom_processor(), ideal_memsys())
    assert stats.by_class[ExecClass.BRANCH] == 8
    assert stats.cycles >= 8  # one bubble per taken branch
