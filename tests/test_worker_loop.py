"""Worker-loop hardening: idle budget, backoff, and crash survival.

Three regressions pinned here, all deterministic via the injectable
clock/rng and the ``_wait`` hook:

* the idle budget pre-charged the *upcoming* pause, so ``--max-idle``
  workers gave up one poll interval early;
* transient transport errors retried on a fixed pause instead of
  backing off (a dead server got hammered at full poll rate forever);
* an engine exception inside a leased shard escaped ``run`` and
  killed the whole worker loop.

The end-to-end half injects a worker whose engine always raises into
a live two-worker fleet and asserts the fleet still resolves the grid
exactly once while the broken worker keeps polling.
"""

import threading
import time

import pytest

from repro.engine import Engine, RemoteBackend, RunSpec, Sweep
from repro.service import (
    ServiceClient,
    ServiceWorker,
    WorkLeaseGrant,
    background_server,
)

BENCH = "gsm_encode"

SPECS = Sweep(benchmarks=(BENCH,), codings=("mom", "mom3d", "mmx"),
              memsystems=("ideal",)).specs()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class IdleClient:
    """A lease endpoint that never has work."""

    def lease_work(self, _worker_id, report=None):
        return None


class PlannedClient:
    """Replays a scripted lease sequence; 'err' raises OSError."""

    def __init__(self, plan):
        self.plan = list(plan)

    def lease_work(self, _worker_id, report=None):
        if not self.plan:
            raise StopIteration("plan exhausted")
        step = self.plan.pop(0)
        if step == "err":
            raise OSError("connection refused")
        return step

    def complete_work(self, _worker_id, grant, results, **kwargs):
        return {"accepted": True, "fresh": len(results), "duplicate": 0}


def _fake_time_worker(client, **kwargs) -> tuple[ServiceWorker, FakeClock]:
    """A worker on a virtual clock whose waits advance it instantly."""
    clock = FakeClock()
    worker = ServiceWorker("http://127.0.0.1:1", Engine(use_cache=False),
                           clock=clock, **kwargs)
    worker.client = client

    def wait(pause: float) -> bool:
        clock.now += pause
        return False

    worker._wait = wait
    return worker, clock


# --- idle-budget accounting ---------------------------------------------------


def test_idle_budget_spends_the_full_budget():
    """--max-idle 1 with a 0.3s poll interval must wait the whole
    second (5 polls: 0.0, 0.3, 0.6, 0.9, 1.0), not give up after the
    fourth because the *upcoming* pause was pre-charged."""
    worker, clock = _fake_time_worker(IdleClient(), poll_interval=0.3,
                                      max_idle=1.0)
    stats = worker.run()
    assert clock.now == pytest.approx(1.0)  # final pause clamped to 0.1
    assert stats.idle_polls == 5
    assert stats.leases == 0


def test_unbounded_worker_has_no_idle_exit():
    worker, clock = _fake_time_worker(IdleClient(), poll_interval=0.5)
    polls = []

    def wait(pause: float) -> bool:
        clock.now += pause
        polls.append(pause)
        return len(polls) >= 20  # simulate stop() after 20 polls

    worker._wait = wait
    stats = worker.run()
    assert stats.idle_polls == 20
    assert polls == [0.5] * 20


# --- transient-error backoff --------------------------------------------------


class FixedRng:
    """random() pinned to 1.0: jitter factor exactly 1."""

    def random(self) -> float:
        return 1.0


def test_backoff_doubles_and_resets_after_success():
    client = PlannedClient(["err", "err", "err", None, "err"])
    worker, _clock = _fake_time_worker(
        client, poll_interval=0.2, retry_backoff=1.0,
        retry_backoff_max=30.0, rng=FixedRng())
    waits = []

    def wait(pause: float) -> bool:
        waits.append(pause)
        return not client.plan  # stop once the plan is spent

    worker._wait = wait
    stats = worker.run()
    # 1 -> 2 -> 4 while the server is down, one plain idle poll after
    # it answers (backoff reset), then the ladder restarts at 1
    assert waits == pytest.approx([1.0, 2.0, 4.0, 0.2, 1.0])
    assert stats.errors == 4
    assert stats.idle_polls == 1


def test_backoff_caps_at_retry_backoff_max():
    worker, _clock = _fake_time_worker(
        IdleClient(), retry_backoff=1.0, retry_backoff_max=8.0,
        rng=FixedRng())
    ladder = [worker._next_backoff() for _ in range(5)]
    assert ladder == [1.0, 2.0, 4.0, 8.0, 8.0]
    worker._backoff = 0.0  # what a successful round-trip does
    assert worker._next_backoff() == 1.0


def test_backoff_jitter_stays_within_half_to_full():
    worker = ServiceWorker("http://127.0.0.1:1", Engine(use_cache=False),
                           retry_backoff=2.0, retry_backoff_max=2.0)
    for _ in range(50):
        worker._backoff = 0.0
        assert 1.0 <= worker._next_backoff() <= 2.0


def test_backoff_parameters_validated():
    with pytest.raises(ValueError, match="positive"):
        ServiceWorker("http://127.0.0.1:1", Engine(use_cache=False),
                      retry_backoff=0)
    with pytest.raises(ValueError, match="retry_backoff_max"):
        ServiceWorker("http://127.0.0.1:1", Engine(use_cache=False),
                      retry_backoff=5.0, retry_backoff_max=1.0)


# --- engine crash guard -------------------------------------------------------


def test_engine_exception_is_scoped_to_the_shard(capsys):
    """A raising engine costs one shard, not the worker: the loop
    counts the failure, keeps polling, and exits through the idle
    budget as usual."""
    spec = RunSpec(BENCH, "mom", "ideal")
    grants = [WorkLeaseGrant(lease_id="l1", shard_id="s1", ttl=30.0,
                             specs=(spec,)), None, None, None, None]
    client = PlannedClient(grants)
    worker, clock = _fake_time_worker(client, poll_interval=0.1,
                                      max_idle=0.25,
                                      worker_id="w-crash")

    def boom(_specs, **_kwargs):
        raise RuntimeError("simulated engine fault")

    worker.engine.run_many = boom
    stats = worker.run()
    assert stats.leases == 1
    assert stats.failed_shards == 1
    assert stats.errors == 1
    assert stats.completions == 0
    assert stats.idle_polls >= 2  # the loop survived and kept polling
    captured = capsys.readouterr()
    assert "shard s1 failed locally" in captured.err
    assert "w-crash" in captured.err


def test_worker_reports_counters_on_lease_and_complete():
    """Every poll and completion carries the cumulative stats dict
    (the server folds it into the fleet gauges)."""
    spec = RunSpec(BENCH, "mom", "ideal")
    grant = WorkLeaseGrant(lease_id="l1", shard_id="s1", ttl=30.0,
                           specs=(spec,))
    seen = []

    class RecordingClient:
        def lease_work(self, _worker_id, report=None):
            seen.append(("lease", report))
            return grant if len(seen) == 1 else None

        def complete_work(self, _worker_id, _grant, results, *,
                          elapsed=None, report=None):
            seen.append(("complete", report))
            assert elapsed is not None and elapsed >= 0
            return {"accepted": True, "fresh": len(results),
                    "duplicate": 0}

    worker, _clock = _fake_time_worker(RecordingClient(),
                                       poll_interval=0.1, max_idle=0.1)
    worker.engine = Engine(use_cache=False, backend="inline")
    stats = worker.run()
    assert stats.completions == 1
    kinds = [kind for kind, _report in seen]
    assert kinds.count("complete") == 1
    for _kind, report in seen:
        assert isinstance(report, dict)
        assert "failed_shards" in report
    # the completion report already counts the lease it rode in on
    complete_report = next(report for kind, report in seen
                           if kind == "complete")
    assert complete_report["leases"] == 1
    assert "failed-shards=0" in stats.summary()


# --- end-to-end fault injection -----------------------------------------------


def test_fleet_survives_a_worker_with_a_broken_engine(tmp_path):
    """Worker A's engine raises on every shard; worker B is healthy.
    The grid still resolves with exactly one admission per shard, A
    keeps polling the whole time, and the failures surface in the
    server's fleet gauges."""
    backend = RemoteBackend(lease_ttl=0.4, wait_timeout=60.0)
    engine = Engine(use_cache=False, backend=backend)
    expected = Engine(use_cache=False,
                      backend="inline").run_many(SPECS)
    with background_server(engine, window=0.01) as server:
        bad = ServiceWorker(server.url, Engine(use_cache=False),
                            worker_id="w-bad", poll_interval=0.02)
        bad.engine.run_many = _always_raise
        bad_thread = threading.Thread(target=bad.run, daemon=True)
        bad_thread.start()

        results_holder: dict = {}

        def coordinate():
            results_holder["results"] = engine.run_many(SPECS, jobs=2)

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()

        # let the broken worker burn at least one lease first
        deadline = time.monotonic() + 10
        while bad.stats.failed_shards < 1 and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert bad.stats.failed_shards >= 1

        good = ServiceWorker(server.url, Engine(use_cache=False),
                             worker_id="w-good", poll_interval=0.02)
        good_thread = threading.Thread(target=good.run, daemon=True)
        good_thread.start()
        try:
            coordinator.join(timeout=60)
            assert not coordinator.is_alive()
            # the broken worker is still polling, not dead
            assert bad_thread.is_alive()
            counters = backend.counters()
            assert counters["completions"] == \
                counters["enqueued_shards"]
            assert counters["releases"] >= 1  # expired bad leases
            scrape = ServiceClient(server.url).metrics()
            lines = dict(line.rsplit(" ", 1)
                         for line in scrape.splitlines()
                         if line and not line.startswith("#"))
            assert float(lines["repro_fleet_failed_shards"]) >= 1
            assert float(lines["repro_fleet_workers"]) >= 2
        finally:
            bad.stop()
            good.stop()
            bad_thread.join(timeout=30)
            good_thread.join(timeout=30)
    results = results_holder["results"]
    assert {spec: stats.to_dict()
            for spec, stats in results.items()} == \
        {spec: stats.to_dict() for spec, stats in expected.items()}
    assert good.stats.completions >= 1


def _always_raise(_specs, **_kwargs):
    raise RuntimeError("injected engine fault")
