"""Scheduler tests: in-flight dedup, batch coalescing, job snapshots."""

import asyncio
import threading

import pytest

from repro.engine import Engine, RunSpec, Sweep
from repro.service.scheduler import BatchScheduler, Job, JobStore

BENCH = "gsm_encode"
IDEAL = RunSpec(BENCH, "mom", "ideal")  # cheapest simulation point


def _run(coro):
    return asyncio.run(coro)


def test_n_identical_submissions_one_simulation_pass():
    """The acceptance property: N concurrent identical submissions
    coalesce onto one in-flight future and one simulation."""
    engine = Engine(use_cache=False)

    async def main():
        async with BatchScheduler(engine, window=0.05) as scheduler:
            futures = []
            for _ in range(8):
                futures.extend(scheduler.submit([IDEAL]))
            results = await asyncio.gather(*futures)
            return scheduler, results

    scheduler, results = _run(main())
    assert engine.stats.simulations == 1
    assert scheduler.stats.submitted == 8
    assert scheduler.stats.coalesced == 7
    assert scheduler.stats.batches == 1
    assert scheduler.stats.batched_specs == 1
    # every waiter sees the same memoized object
    assert all(r is results[0] for r in results)


def test_submissions_during_flight_attach_to_running_future():
    """A spec submitted while its simulation is running must not start
    a second one — the new waiter attaches to the in-flight future."""
    engine = Engine(use_cache=False)
    entered = threading.Event()
    release = threading.Event()
    calls = []
    real_run_many = engine.run_many

    def gated_run_many(specs, jobs=None):
        calls.append(list(specs))
        entered.set()
        assert release.wait(timeout=10)
        return real_run_many(specs, jobs=jobs)

    engine.run_many = gated_run_many

    async def main():
        async with BatchScheduler(engine, window=0.0) as scheduler:
            first = scheduler.submit([IDEAL])[0]
            # wait until the batch is actually executing on the engine
            while not entered.is_set():
                await asyncio.sleep(0.005)
            second = scheduler.submit([IDEAL])[0]
            assert second is first  # same in-flight future
            release.set()
            await asyncio.gather(first, second)
            return scheduler

    scheduler = _run(main())
    assert len(calls) == 1
    assert engine.stats.simulations == 1
    assert scheduler.stats.coalesced == 1


def test_distinct_specs_coalesce_into_one_batch():
    engine = Engine(use_cache=False)
    sweep = Sweep(benchmarks=(BENCH,), codings=("mom", "mom3d"),
                  memsystems=("vector", "ideal"))
    specs = sweep.specs()

    async def main():
        async with BatchScheduler(engine, window=0.05,
                                  max_batch=64) as scheduler:
            tasks = [asyncio.create_task(scheduler.run_specs([spec]))
                     for spec in specs]
            await asyncio.gather(*tasks)
            return scheduler

    scheduler = _run(main())
    assert scheduler.stats.batches == 1
    assert scheduler.stats.batched_specs == len(set(specs))
    assert engine.stats.simulations == len(set(specs))


def test_max_batch_splits_dispatches():
    engine = Engine(use_cache=False)
    specs = Sweep(benchmarks=(BENCH,), codings=("mom",),
                  memsystems=("ideal", "vector"),
                  l2_latencies=(20, 40)).specs()
    unique = list(dict.fromkeys(specs))

    async def main():
        async with BatchScheduler(engine, window=0.05,
                                  max_batch=2) as scheduler:
            await scheduler.run_specs(specs)
            return scheduler

    scheduler = _run(main())
    assert scheduler.stats.batches >= 2
    assert scheduler.stats.batched_specs == len(unique)
    assert engine.stats.simulations == len(unique)


def test_execution_errors_propagate_to_every_waiter():
    engine = Engine(use_cache=False)
    bad = RunSpec("no_such_benchmark", "mom")

    async def main():
        async with BatchScheduler(engine, window=0.0) as scheduler:
            futures = scheduler.submit([bad, bad])
            outcomes = await asyncio.gather(*futures,
                                            return_exceptions=True)
            return outcomes

    outcomes = _run(main())
    assert len(outcomes) == 2
    assert all(isinstance(o, Exception) for o in outcomes)
    assert "no_such_benchmark" in str(outcomes[0])


def test_failing_spec_does_not_poison_batchmates():
    """A bad spec coalesced into a batch with good ones must fail
    alone; the good specs' futures still resolve with results."""
    engine = Engine(use_cache=False)
    bad = RunSpec("no_such_benchmark", "mom")

    async def main():
        async with BatchScheduler(engine, window=0.05) as scheduler:
            futures = scheduler.submit([IDEAL, bad])
            outcomes = await asyncio.gather(*futures,
                                            return_exceptions=True)
            return outcomes

    good, failed = _run(main())
    assert good.cycles > 0  # the valid spec produced real stats
    assert isinstance(failed, Exception)
    assert "no_such_benchmark" in str(failed)
    assert engine.stats.simulations == 1


def test_failed_spec_can_be_resubmitted():
    """A failure clears the in-flight slot; a later submission retries
    instead of being welded to the old failed future."""
    engine = Engine(use_cache=False)
    bad = RunSpec("no_such_benchmark", "mom")

    async def main():
        async with BatchScheduler(engine, window=0.0) as scheduler:
            with pytest.raises(Exception, match="no_such_benchmark"):
                await scheduler.submit([bad])[0]
            retry = scheduler.submit([bad])[0]
            with pytest.raises(Exception, match="no_such_benchmark"):
                await retry

    _run(main())


def test_close_fails_pending_futures():
    engine = Engine(use_cache=False)

    async def main():
        scheduler = BatchScheduler(engine, window=30.0)
        scheduler.start()
        future = scheduler.submit([IDEAL])[0]
        await scheduler.close()
        with pytest.raises(RuntimeError, match="scheduler closed"):
            future.result()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit([IDEAL])

    _run(main())


# --- jobs ---------------------------------------------------------------------


def test_job_snapshot_lifecycle():
    engine = Engine(use_cache=False)

    async def main():
        async with BatchScheduler(engine, window=0.02) as scheduler:
            job = Job([IDEAL], scheduler.submit([IDEAL]))
            first = job.snapshot()
            await asyncio.gather(*job.futures)
            done = job.snapshot()
            return first, done

    first, done = _run(main())
    assert first.status in ("running", "done")
    assert done.status == "done"
    assert done.results is not None
    spec, stats = done.results[0]
    assert spec == IDEAL and stats.cycles > 0


def test_job_snapshot_failure():
    engine = Engine(use_cache=False)
    bad = RunSpec("no_such_benchmark", "mom")

    async def main():
        async with BatchScheduler(engine, window=0.0) as scheduler:
            job = Job([bad], scheduler.submit([bad]))
            await asyncio.gather(*job.futures, return_exceptions=True)
            return job.snapshot()

    snapshot = _run(main())
    assert snapshot.status == "failed"
    assert "no_such_benchmark" in (snapshot.error or "")
    assert snapshot.results is None


def test_job_store_evicts_only_finished_jobs():
    loop = asyncio.new_event_loop()
    try:
        store = JobStore(limit=2)
        done_future = loop.create_future()
        done_future.set_result(None)
        pending = loop.create_future()
        finished = [Job([], [done_future]) for _ in range(2)]
        running = Job([], [pending])
        for job in finished:
            store.add(job)
        store.add(running)
        assert len(store) == 2
        assert store.get(running.job_id) is running
        assert store.get(finished[0].job_id) is None
    finally:
        loop.close()


def test_job_store_eviction_prefers_served_jobs():
    """A finished-but-never-polled job survives a burst while an
    already-served one is evicted first."""
    loop = asyncio.new_event_loop()
    try:
        store = JobStore(limit=2)
        done = loop.create_future()
        done.set_result(None)
        served = Job([], [done])
        served.served = True
        unserved = Job([], [done])
        store.add(served)
        store.add(unserved)
        store.add(Job([], [done]))  # pushes past the limit
        assert store.get(served.job_id) is None
        assert store.get(unserved.job_id) is unserved
    finally:
        loop.close()


def test_job_store_refuses_past_running_limit():
    from repro.service.scheduler import JobStoreFull

    loop = asyncio.new_event_loop()
    try:
        store = JobStore(limit=1)
        store.add(Job([], [loop.create_future()]))  # still running
        with pytest.raises(JobStoreFull, match="already running"):
            store.add(Job([], [loop.create_future()]))
        assert store.running() == 1
    finally:
        loop.close()
