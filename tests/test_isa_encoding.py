"""Round-trip tests for the binary trace encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import ElemType, Instruction, Opcode, Program, d3, r, v
from repro.isa.encoding import (
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)

SAMPLE_INSTRUCTIONS = [
    Instruction(op=Opcode.LI, dsts=(r(3),), imm=42),
    Instruction(op=Opcode.LI, dsts=(r(3),), imm=-42),
    Instruction(op=Opcode.ADD, dsts=(r(1),), srcs=(r(2), r(3))),
    Instruction(op=Opcode.VLD, dsts=(v(0),), ea=0x1000, stride=-64, vl=8),
    Instruction(op=Opcode.PADDB, dsts=(v(1),), srcs=(v(0), v(2)),
                etype=ElemType.U8, vl=16),
    Instruction(op=Opcode.DVLOAD3, dsts=(d3(0),), ea=0xFFFF_0000,
                stride=720, wwords=16, back=True, vl=8),
    Instruction(op=Opcode.DVMOV3, dsts=(v(5),), srcs=(d3(1),),
                pstride=-2, vl=10),
    Instruction(op=Opcode.PSRAW, dsts=(v(3),), srcs=(v(3),),
                etype=ElemType.I16, imm=5, vl=4),
]


@pytest.mark.parametrize("inst", SAMPLE_INSTRUCTIONS, ids=lambda i: i.op.value)
def test_instruction_roundtrip(inst):
    blob = encode_instruction(inst)
    back, consumed = decode_instruction(blob)
    assert consumed == len(blob)
    # tag is not serialized; compare everything else
    assert back == Instruction(**{**inst.__dict__, "tag": ""})


def test_program_roundtrip():
    program = Program(name="unit-test")
    for inst in SAMPLE_INSTRUCTIONS:
        program.append(inst)
    back = decode_program(encode_program(program))
    assert back.name == "unit-test"
    assert len(back) == len(program)
    for a, b in zip(program, back):
        assert a.op == b.op and a.ea == b.ea and a.vl == b.vl


def test_bad_magic_rejected():
    with pytest.raises(IsaError):
        decode_program(b"XXXX" + b"\x00" * 16)


def test_truncated_record_rejected():
    with pytest.raises(IsaError):
        decode_instruction(b"\x01\x02")


@given(
    st.integers(0, (1 << 48) - 1),
    st.integers(-(1 << 31), (1 << 31) - 1),
    st.integers(1, 16),
)
@settings(max_examples=50)
def test_vld_roundtrip_property(ea, stride, vl):
    inst = Instruction(op=Opcode.VLD, dsts=(v(0),), ea=ea,
                       stride=stride, vl=vl)
    back, _ = decode_instruction(encode_instruction(inst))
    assert back.ea == ea and back.stride == stride and back.vl == vl
