"""Execution-backend tests: protocol, parity, leases, fault injection.

The headline property (this PR's acceptance criterion): the fig3, fig9
and table1 grids produce byte-identical ``RunStats.to_dict()`` results
whether the engine executes inline, across the local process pool, or
on remote workers pulling shards over HTTP — and a two-worker remote
run admits every shard's results exactly once, even when a worker dies
mid-lease.
"""

import threading
import time

import pytest

from repro.engine import (
    Engine,
    InlineBackend,
    ProcessBackend,
    RemoteBackend,
    RunSpec,
    Sweep,
    WorkQueue,
    make_backend,
)
from repro.engine.backends import BACKEND_NAMES, ExecutionBackend
from repro.engine.backends.workqueue import WorkQueueError
from repro.engine.parallel import execute_spec
from repro.errors import ConfigError
from repro.harness.experiments import paper_grids
from repro.service import ServiceClient, ServiceWorker, background_server
from repro.timing.stats import RunStats

BENCH = "gsm_encode"  # smallest trace; keeps single-point tests quick

SMALL = Sweep(benchmarks=(BENCH, "jpeg_encode"),
              codings=("mom", "mom3d"), memsystems=("ideal",)).specs()


@pytest.fixture()
def remote_service():
    """A remote-backend service plus two live worker threads."""
    backend = RemoteBackend(lease_ttl=10.0, wait_timeout=120.0)
    engine = Engine(use_cache=False, backend=backend)
    with background_server(engine, window=0.01) as server:
        workers = [ServiceWorker(server.url, Engine(use_cache=False),
                                 worker_id=f"w{i}", poll_interval=0.02)
                   for i in range(2)]
        threads = [threading.Thread(target=worker.run, daemon=True)
                   for worker in workers]
        for thread in threads:
            thread.start()
        try:
            yield engine, server, workers
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=30)


# --- protocol & factory -------------------------------------------------------


def test_make_backend_registry():
    assert BACKEND_NAMES == ("inline", "process", "remote")
    for name in BACKEND_NAMES:
        backend = make_backend(name, jobs=2)
        assert backend.name == name
        assert isinstance(backend, ExecutionBackend)
        assert isinstance(backend.counters(), dict)
        backend.close()
    with pytest.raises(ValueError, match="unknown execution backend"):
        make_backend("gpu")
    with pytest.raises(ValueError, match="positive"):
        ProcessBackend(jobs=0)
    with pytest.raises(ValueError, match="positive"):
        RemoteBackend(shards=0)
    with pytest.raises(ValueError, match="lease_ttl"):
        WorkQueue(lease_ttl=0)


def test_engine_accepts_backend_by_name_and_counts_dispatches():
    engine = Engine(use_cache=False, backend="inline")
    assert engine.backend.name == "inline"
    spec = RunSpec(BENCH, "mom", "ideal")
    first = engine.run(spec)
    assert engine.stats.dispatches == 1
    assert engine.run(spec) is first  # memo hit: no second dispatch
    assert engine.stats.dispatches == 1
    assert engine.backend.counters()["executed"] == 1


def test_remote_backend_rejects_trace_specs(tmp_path):
    from repro.engine import register_trace
    from repro.harness.traceio import export_workload

    path = tmp_path / "t.bin"
    export_workload(BENCH, "mom", path)
    benchmark = register_trace(path)
    backend = RemoteBackend(wait_timeout=1)
    with pytest.raises(ConfigError, match="remote workers"):
        backend.execute([RunSpec(benchmark, "mom", "ideal")])


# --- the acceptance criterion: cross-backend byte parity ----------------------


def test_paper_grids_byte_identical_across_backends(remote_service):
    """fig3 + fig9 + table1: inline == process == remote, byte for
    byte, with the remote run sharded over two HTTP workers."""
    engine, _server, _workers = remote_service
    grid = paper_grids()

    inline = Engine(use_cache=False, backend=InlineBackend()
                    ).run_many(grid)
    process = Engine(use_cache=False, backend=ProcessBackend(jobs=2)
                     ).run_many(grid)
    remote = engine.run_many(grid, jobs=4)

    assert set(inline) == set(process) == set(remote) == set(grid)
    for spec in grid:
        assert inline[spec].to_dict() == process[spec].to_dict(), spec
        assert inline[spec].to_dict() == remote[spec].to_dict(), spec

    # every shard dispatched was simulated exactly once: no shard was
    # completed twice, and the engine admitted one result per spec
    counters = engine.backend.counters()
    assert counters["completions"] == counters["enqueued_shards"]
    assert counters["completed_specs"] == len(grid)
    assert counters["duplicate_completions"] == 0
    assert engine.stats.simulations == len(grid)


def test_remote_jobs_hint_controls_fan_out(remote_service):
    engine, _server, workers = remote_service
    results = engine.run_many(SMALL, jobs=4)
    serial = Engine(use_cache=False, backend="inline").run_many(SMALL)
    for spec in SMALL:
        assert results[spec].to_dict() == serial[spec].to_dict()
    # the grid fanned out as 4 single-spec shards, all completed
    assert engine.backend.counters()["enqueued_shards"] == 4
    assert sum(worker.stats.completions for worker in workers) == 4


# --- work queue unit semantics ------------------------------------------------


def _stats(name: str) -> RunStats:
    return RunStats(name=name)


def test_workqueue_lease_expiry_releases_shard():
    now = [0.0]
    queue = WorkQueue(lease_ttl=10.0, clock=lambda: now[0])
    specs = (RunSpec(BENCH, "mom", "ideal"),
             RunSpec(BENCH, "mom3d", "ideal"))
    (shard_id,) = queue.enqueue([specs])

    first = queue.lease("w-dead")
    assert first is not None and first.shard.shard_id == shard_id
    assert queue.lease("w2") is None  # nothing else to hand out

    now[0] = 10.1  # past the TTL: the shard is offered again
    second = queue.lease("w-live")
    assert second is not None
    assert second.shard.shard_id == shard_id
    assert second.lease_id != first.lease_id
    assert queue.counters()["releases"] == 1

    # the dead worker finishing late is a stale (but valid) completion
    results = {spec: _stats(spec.label()) for spec in specs}
    fresh, dup = queue.complete(shard_id, first.lease_id, results)
    assert (fresh, dup) == (2, 0)
    assert queue.counters()["stale_completions"] == 1

    # the re-leased worker double-reporting changes nothing
    fresh, dup = queue.complete(shard_id, second.lease_id, results)
    assert (fresh, dup) == (0, 2)
    assert queue.counters()["duplicate_completions"] == 1

    collected = queue.collect([shard_id], timeout=1)
    assert set(collected) == set(specs)

    # ...and a completion after collection is still just a duplicate
    fresh, dup = queue.complete(shard_id, second.lease_id, results)
    assert (fresh, dup) == (0, 2)


def test_workqueue_two_sided_duplicate_race():
    """The TTL re-lease race run to *both* ends: the replacement
    worker completes first, then the presumed-dead original uploads
    too.  The late completion must be acknowledged idempotently (not
    errored, not double-admitted) and counted in the dedicated
    ``late_completions`` counter — the mirror image of the
    stale-completion ordering exercised above."""
    now = [0.0]
    queue = WorkQueue(lease_ttl=10.0, clock=lambda: now[0])
    specs = (RunSpec(BENCH, "mom", "ideal"),
             RunSpec(BENCH, "mom3d", "ideal"))
    (shard_id,) = queue.enqueue([specs])
    results = {spec: _stats(spec.label()) for spec in specs}

    original = queue.lease("w-slow")
    now[0] = 10.1  # TTL passes: the shard is re-leased
    replacement = queue.lease("w-live")
    assert replacement.lease_id != original.lease_id

    # the replacement finishes first: the normal winning completion
    fresh, dup = queue.complete(shard_id, replacement.lease_id, results)
    assert (fresh, dup) == (2, 0)

    # the original worker was only slow, not dead: its upload lands
    # after the winner — acknowledged as a duplicate, counted as late
    fresh, dup = queue.complete(shard_id, original.lease_id, results)
    assert (fresh, dup) == (0, 2)
    counters = queue.counters()
    assert counters["completions"] == 1
    assert counters["duplicate_completions"] == 1
    assert counters["late_completions"] == 1
    assert counters["stale_completions"] == 0

    # results still collect exactly once
    collected = queue.collect([shard_id], timeout=1)
    assert set(collected) == set(specs)

    # a lease id the queue never issued is a protocol error, live or
    # retired — never silently absorbed into the duplicate path
    with pytest.raises(WorkQueueError, match="never issued"):
        queue.complete(shard_id, "forged-lease", results)


def test_workqueue_completion_validation():
    queue = WorkQueue(lease_ttl=10.0)
    spec = RunSpec(BENCH, "mom", "ideal")
    other = RunSpec(BENCH, "mom3d", "ideal")
    (shard_id,) = queue.enqueue([(spec,)])
    queue.lease("w1")
    with pytest.raises(WorkQueueError, match="unknown shard"):
        queue.complete("no-such-shard", "x", {spec: _stats("s")})
    with pytest.raises(WorkQueueError, match="cover its"):
        queue.complete(shard_id, "x", {other: _stats("s")})
    with pytest.raises(WorkQueueError, match="cover its"):
        queue.complete(shard_id, "x", {})


def test_workqueue_collect_timeout_then_discard():
    queue = WorkQueue(lease_ttl=10.0)
    spec = RunSpec(BENCH, "mom", "ideal")
    (shard_id,) = queue.enqueue([(spec,)])
    lease = queue.lease("w1")
    with pytest.raises(TimeoutError, match="worker attached"):
        queue.collect([shard_id], timeout=0.05)
    queue.discard([shard_id])
    # a worker uploading after the producer gave up: duplicate ack
    fresh, dup = queue.complete(shard_id, lease.lease_id,
                                {spec: _stats("s")})
    assert (fresh, dup) == (0, 1)
    assert queue.counters()["discarded"] == 1


def test_workqueue_skips_empty_shards():
    queue = WorkQueue()
    assert queue.enqueue([(), ()]) == []
    assert queue.lease("w1") is None


def test_remote_execute_times_out_without_workers():
    backend = RemoteBackend(wait_timeout=0.1)
    with pytest.raises(TimeoutError):
        backend.execute([RunSpec(BENCH, "mom", "ideal")])
    # the timed-out shard was discarded, not leaked
    counters = backend.counters()
    assert counters["pending_shards"] == 0
    assert counters["discarded"] == 1


def test_worker_idle_budget_restarts_after_long_shard():
    """Time spent simulating a shard is not idle time: a worker whose
    shard outlasts --max-idle must keep polling afterwards instead of
    exiting the moment the queue goes quiet."""
    from repro.service import WorkLeaseGrant

    worker = ServiceWorker("http://127.0.0.1:1",
                           Engine(use_cache=False),
                           max_idle=0.3, poll_interval=0.05)
    spec = RunSpec(BENCH, "mom", "ideal")
    grants = [WorkLeaseGrant(lease_id="l1", shard_id="s1", ttl=30.0,
                             specs=(spec,))]

    class StubClient:
        def lease_work(self, _worker_id, report=None):
            return grants.pop(0) if grants else None

        def complete_work(self, _worker_id, grant, results, **kwargs):
            return {"accepted": True, "fresh": len(results),
                    "duplicate": 0}

    worker.client = StubClient()
    real_run_many = worker.engine.run_many

    def slow_run_many(specs, **kwargs):
        time.sleep(0.5)  # a shard longer than the whole idle budget
        return real_run_many(specs, **kwargs)

    worker.engine.run_many = slow_run_many
    stats = worker.run()
    assert stats.completions == 1
    # the idle clock restarted after the upload: several empty polls
    # fit into the 0.3s budget (the regression exited after one)
    assert stats.idle_polls >= 3


# --- fault injection: a worker dies mid-lease ---------------------------------


def test_worker_death_releases_shard_without_double_admission(tmp_path):
    """End-to-end over HTTP: worker A leases a shard and dies; after
    the TTL the shard is re-leased to worker B, whose results are
    admitted into the shared cache exactly once; A's eventual late
    upload is acknowledged as a duplicate and changes nothing."""
    backend = RemoteBackend(lease_ttl=0.4, wait_timeout=60.0)
    engine = Engine(cache_dir=tmp_path, backend=backend)
    specs = SMALL
    with background_server(engine, window=0.01) as server:
        dead = ServiceClient(server.url)
        results_holder: dict = {}

        def coordinate():
            results_holder["results"] = engine.run_many(specs, jobs=2)

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()

        # worker A takes one shard and never completes it
        deadline = time.monotonic() + 10
        grant = None
        while grant is None and time.monotonic() < deadline:
            grant = dead.lease_work("w-dead")
            if grant is None:
                time.sleep(0.02)
        assert grant is not None

        time.sleep(0.5)  # let A's lease expire

        live = ServiceWorker(server.url, Engine(use_cache=False),
                             worker_id="w-live", poll_interval=0.02)
        live_thread = threading.Thread(target=live.run, daemon=True)
        live_thread.start()
        coordinator.join(timeout=60)
        assert not coordinator.is_alive()

        # worker A rises from the dead and uploads its stale shard
        ghost_results = {spec: execute_spec(spec)
                         for spec in grant.specs}
        reply = dead.complete_work("w-dead", grant, ghost_results)
        assert reply["accepted"] is True
        assert reply["fresh"] == 0
        assert reply["duplicate"] == len(grant.specs)

        live.stop()
        live_thread.join(timeout=30)

    results = results_holder["results"]
    serial = Engine(use_cache=False, backend="inline").run_many(specs)
    for spec in specs:
        assert results[spec].to_dict() == serial[spec].to_dict()

    # exactly-once admission: one store per unique spec, the re-leased
    # shard completed once, and the ghost upload counted as duplicate
    assert engine.stats.simulations == len(specs)
    assert engine.stats.stores == len(specs)
    assert len(engine.cache) == len(specs)
    counters = backend.counters()
    assert counters["releases"] >= 1
    assert counters["duplicate_completions"] >= 1
    assert counters["completed_specs"] == len(specs)
