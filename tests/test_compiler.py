"""Compiler tests: the generated code must equal the numpy references,
and the 3D pass must reduce cache accesses without changing results."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.compiler import (
    Affine,
    Loop,
    MapNest,
    Ref,
    ReduceSelectNest,
    Reduction,
    Select,
    compile_map,
    compile_reduce_select,
    pick_3d_candidates,
)
from repro.isa import ElemType, Opcode
from repro.timing import mom3d_processor, mom_processor, simulate, vector_memsys
from repro.vm import Arena, Executor, FlatMemory
from repro.workloads.frames import synthetic_frame, synthetic_speech

WIDTH = 64


def fullsearch_nest(bx, by, win=2, bsize=8):
    """The paper's Fig. 1 fullsearch kernel as a loop nest."""
    n = 2 * win + 1
    base = (by - win) * WIDTH + (bx - win)
    a = Ref("ref", Affine(base, {"k": 1, "j": WIDTH, "i": 1}),
            ElemType.U8)
    b = Ref("cur", Affine(by * WIDTH + bx, {"j": WIDTH, "i": 1}),
            ElemType.U8)
    return ReduceSelectNest(
        k=Loop("k", n * n), j=Loop("j", bsize), i=Loop("i", bsize),
        reduction=Reduction("sad", a, b), select=Select("min"))


def sad_reference_1d(ref, cur, bx, by, win, bsize):
    """Reference for the nest above: k walks a flat 1D candidate range.

    Note: the nest's k is a *single* linear loop over (2win+1)^2
    positions all shifted horizontally (k * 1 byte), matching the
    paper's Fig. 1 code where the k loop walks the x axis.
    """
    n = 2 * win + 1
    block = cur[by:by + bsize, bx:bx + bsize].astype(np.int64)
    best_idx, best = 0, 1 << 30
    for k in range(n * n):
        x0 = bx - win + k
        cand = ref[by - win:by - win + bsize, x0:x0 + bsize].astype(
            np.int64)
        sad = int(np.abs(cand - block).sum())
        if sad < best:
            best_idx, best = k, sad
    return best_idx, best


@pytest.fixture
def frames_memory():
    memory = FlatMemory(1 << 18)
    arena = Arena(memory)
    ref = synthetic_frame(WIDTH, 48, seed=3)
    cur = synthetic_frame(WIDTH, 48, seed=4)
    symbols = {
        "ref": arena.alloc_array(ref),
        "cur": arena.alloc_array(cur),
    }
    result = arena.alloc(16)
    return memory, symbols, result, ref, cur


@pytest.mark.parametrize("use_3d", [False, True])
def test_compiled_fullsearch_matches_reference(frames_memory, use_3d):
    memory, symbols, result, ref, cur = frames_memory
    nest = fullsearch_nest(16, 16)
    compiled = compile_reduce_select(nest, symbols, result,
                                     use_3d=use_3d)
    assert compiled.used_3d == use_3d
    Executor(memory).run(compiled.builder.program)
    exp_idx, exp_sad = sad_reference_1d(ref, cur, 16, 16, 2, 8)
    assert memory.read_u64(result) == exp_idx
    assert memory.read_u64(result + 8) == exp_sad


def test_3d_pass_reduces_cache_accesses(frames_memory):
    memory, symbols, result, ref, cur = frames_memory
    nest = fullsearch_nest(16, 16)
    plain = compile_reduce_select(nest, symbols, result, use_3d=False)
    with3d = compile_reduce_select(nest, symbols, result, use_3d=True)
    s2 = simulate(plain.builder.program, mom_processor(), vector_memsys())
    s3 = simulate(with3d.builder.program, mom3d_processor(),
                  vector_memsys())
    assert s3.l2_activity < s2.l2_activity / 2
    assert s3.veclen.loads3d > 0


def test_invariant_stream_is_hoisted_not_3d(frames_memory):
    memory, symbols, result, *_ = frames_memory
    nest = fullsearch_nest(16, 16)
    candidates = pick_3d_candidates(nest)
    assert [c.array for c in candidates] == ["ref"]  # cur is invariant


def test_3d_request_without_candidates_rejected():
    # both streams invariant along k -> nothing to 3D-vectorize
    a = Ref("x", Affine(0, {"j": 64, "i": 1}), ElemType.U8)
    b = Ref("y", Affine(0, {"j": 64, "i": 1}), ElemType.U8)
    nest = ReduceSelectNest(
        k=Loop("k", 4), j=Loop("j", 8), i=Loop("i", 8),
        reduction=Reduction("sad", a, b), select=Select("min"))
    with pytest.raises(CompileError):
        compile_reduce_select(nest, {"x": 0x1000, "y": 0x2000}, 0x100,
                              use_3d=True)


def test_wide_slab_rejected_for_3d():
    # k stride too large: slab would exceed a 128-byte element
    a = Ref("x", Affine(0, {"k": 256, "j": 64, "i": 1}), ElemType.U8)
    b = Ref("y", Affine(0, {"j": 64, "i": 1}), ElemType.U8)
    nest = ReduceSelectNest(
        k=Loop("k", 8), j=Loop("j", 8), i=Loop("i", 8),
        reduction=Reduction("sad", a, b), select=Select("min"))
    assert pick_3d_candidates(nest) == []


def test_non_contiguous_inner_loop_rejected():
    a = Ref("x", Affine(0, {"k": 1, "j": 64, "i": 2}), ElemType.U8)
    b = Ref("y", Affine(0, {"j": 64, "i": 1}), ElemType.U8)
    nest = ReduceSelectNest(
        k=Loop("k", 4), j=Loop("j", 8), i=Loop("i", 8),
        reduction=Reduction("sad", a, b), select=Select("min"))
    with pytest.raises(CompileError):
        compile_reduce_select(nest, {"x": 0, "y": 0x2000}, 0x100)


def test_vector_dim_longer_than_16_rejected():
    a = Ref("x", Affine(0, {"k": 1, "j": 64, "i": 1}), ElemType.U8)
    b = Ref("y", Affine(0, {"j": 64, "i": 1}), ElemType.U8)
    nest = ReduceSelectNest(
        k=Loop("k", 4), j=Loop("j", 20), i=Loop("i", 8),
        reduction=Reduction("sad", a, b), select=Select("min"))
    with pytest.raises(CompileError):
        compile_reduce_select(nest, {"x": 0, "y": 0x2000}, 0x100)


def test_compiled_correlation_argmax():
    """The GSM LTP pattern: mac reduction + argmax, negative k stride."""
    memory = FlatMemory(1 << 16)
    arena = Arena(memory)
    samples = synthetic_speech(300, seed=7)
    base = arena.alloc_array(samples)
    result = arena.alloc(16)
    k0, lag_min, n_lags = 160, 40, 41
    # d[i16] current window, dp at decreasing addresses as lag grows
    a = Ref("s", Affine(2 * (k0 - lag_min), {"k": -2, "j": 8, "i": 2}),
            ElemType.I16)
    b = Ref("s", Affine(2 * k0, {"j": 8, "i": 2}), ElemType.I16)
    nest = ReduceSelectNest(
        k=Loop("k", n_lags), j=Loop("j", 10), i=Loop("i", 4),
        reduction=Reduction("mac", a, b), select=Select("max"))

    s = samples.astype(np.int64)
    d = s[k0:k0 + 40]
    best_idx, best = 0, -(1 << 30)
    for k in range(n_lags):
        lag = lag_min + k
        corr = int((d * s[k0 - lag:k0 - lag + 40]).sum())
        if corr > best:
            best_idx, best = k, corr

    for use_3d in (False, True):
        mem = FlatMemory(1 << 16)
        mem.data[:] = memory.data
        compiled = compile_reduce_select(nest, {"s": base}, result,
                                         use_3d=use_3d)
        Executor(mem).run(compiled.builder.program)
        assert mem.read_u64(result) == best_idx, f"use_3d={use_3d}"


@pytest.mark.parametrize("use_3d", [False, True])
def test_compiled_map_halfpel(use_3d):
    """Motion-compensation style map: out = pavgb(x, x+1)."""
    memory = FlatMemory(1 << 16)
    arena = Arena(memory)
    frame = synthetic_frame(WIDTH, 16, seed=9)
    base = arena.alloc_array(frame)
    out = arena.alloc(WIDTH * 16)
    a = Ref("f", Affine(0, {"j": WIDTH, "i": 1}), ElemType.U8)
    b = Ref("f", Affine(1, {"j": WIDTH, "i": 1}), ElemType.U8)
    o = Ref("o", Affine(0, {"j": WIDTH, "i": 1}), ElemType.U8)
    nest = MapNest(j=Loop("j", 8), i=Loop("i", 16), op=Opcode.PAVGB,
                   a=a, b=b, out=o, etype=ElemType.U8)
    compiled = compile_map(nest, {"f": base, "o": out}, use_3d=use_3d)
    Executor(memory).run(compiled.builder.program)
    # the output stream uses the same row stride as the input frame
    got = memory.read_array(out, (8, WIDTH), np.uint8)[:, :16]
    expected = ((frame[:8, :16].astype(np.int32)
                 + frame[:8, 1:17] + 1) >> 1).astype(np.uint8)
    assert np.array_equal(got, expected)


def test_map_alias_rejected():
    a = Ref("f", Affine(0, {"j": 64, "i": 1}), ElemType.U8)
    b = Ref("f", Affine(1, {"j": 64, "i": 1}), ElemType.U8)
    out = Ref("f", Affine(8, {"j": 64, "i": 1}), ElemType.U8)
    nest = MapNest(j=Loop("j", 8), i=Loop("i", 8), op=Opcode.PAVGB,
                   a=a, b=b, out=out)
    with pytest.raises(CompileError):
        compile_map(nest, {"f": 0x1000}, use_3d=False)


def test_affine_arithmetic():
    e = Affine(10, {"i": 2, "j": 0})
    assert e.coeff("i") == 2
    assert e.coeff("j") == 0  # zero coefficients dropped
    assert e.evaluate({"i": 3}) == 16
    assert e.shift(5).const == 15
    assert e.drop("i").coeffs == {}
