"""Engine thread-safety stress tests.

One shared Engine serves the service scheduler's executor threads, so
the memo, the stats counters and cache admission must hold up under
concurrent use: counters never tear, admission is first-writer-wins,
and every thread observes the same memoized object per spec.
"""

import threading

from repro.engine import Engine, RunSpec, Sweep

BENCH = "gsm_encode"
IDEAL = RunSpec(BENCH, "mom", "ideal")


def _fan_out(worker, count):
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        try:
            barrier.wait()
            worker(index)
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors


def test_counters_never_tear_under_memo_hammering():
    """Every run() bumps exactly one of memo_hits/simulations, so the
    sum must equal the call count exactly — torn ``+=`` updates under
    an unlocked engine would lose increments here."""
    engine = Engine(use_cache=False)
    engine.run(IDEAL)  # pre-warm: the hammering below is pure memo
    threads, per_thread = 8, 400
    results = [[] for _ in range(threads)]

    def worker(index):
        for _ in range(per_thread):
            results[index].append(engine.run(IDEAL))

    _fan_out(worker, threads)
    assert engine.stats.memo_hits + engine.stats.simulations == \
        threads * per_thread + 1
    # identity-preserving memoization survives concurrency
    first = results[0][0]
    assert all(r is first for chunk in results for r in chunk)


def test_cold_race_admits_one_object_per_spec(tmp_path):
    """Racing threads may each simulate a cold spec, but admission is
    first-writer-wins: one memo object, one disk store, and every
    caller is handed the winning object."""
    engine = Engine(cache_dir=tmp_path)
    threads = 6
    results = []
    lock = threading.Lock()

    def worker(_index):
        stats = engine.run(IDEAL)
        with lock:
            results.append(stats)

    _fan_out(worker, threads)
    assert len(results) == threads
    assert all(r is results[0] for r in results)
    assert engine.stats.stores == 1
    assert 1 <= engine.stats.simulations <= threads
    assert engine.stats.memo_hits + engine.stats.simulations == threads


def test_concurrent_run_many_grids_agree(tmp_path):
    """Two threads resolving overlapping grids against one engine get
    equal results; the shared cache stores each spec exactly once."""
    engine = Engine(cache_dir=tmp_path)
    specs = Sweep(benchmarks=(BENCH,), codings=("mom", "mom3d"),
                  memsystems=("vector", "ideal")).specs()
    unique = list(dict.fromkeys(specs))
    outcomes = {}
    lock = threading.Lock()

    def worker(index):
        grid = engine.run_many(specs)
        with lock:
            outcomes[index] = grid

    _fan_out(worker, 4)
    assert len(outcomes) == 4
    baseline = outcomes[0]
    for grid in outcomes.values():
        assert set(grid) == set(specs)
        for spec in specs:
            assert grid[spec] is baseline[spec]
    assert engine.stats.stores == len(unique)
    assert engine.stats.simulations <= 4 * len(unique)
