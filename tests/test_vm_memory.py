"""Unit + property tests for FlatMemory and the Arena allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.vm import Arena, FlatMemory


def test_u64_roundtrip():
    mem = FlatMemory(1 << 12)
    mem.write_u64(0x100, 0x1122334455667788)
    assert mem.read_u64(0x100) == 0x1122334455667788


def test_u64_little_endian():
    mem = FlatMemory(1 << 12)
    mem.write_u64(0, 0x0102030405060708)
    assert list(mem.read(0, 8)) == [8, 7, 6, 5, 4, 3, 2, 1]


def test_unaligned_u64_read():
    mem = FlatMemory(1 << 12)
    mem.write(0, bytes(range(16)))
    assert mem.read_u64(3) == int.from_bytes(bytes(range(3, 11)), "little")


def test_out_of_bounds_rejected():
    mem = FlatMemory(64)
    with pytest.raises(MemoryError_):
        mem.read(60, 8)
    with pytest.raises(MemoryError_):
        mem.write_u64(-8, 0)


def test_array_roundtrip():
    mem = FlatMemory(1 << 12)
    arr = np.arange(24, dtype=np.int16).reshape(4, 6)
    mem.load_array(0x200, arr)
    back = mem.read_array(0x200, (4, 6), np.int16)
    assert np.array_equal(arr, back)


def test_arena_alignment_and_contents():
    mem = FlatMemory(1 << 12)
    arena = Arena(mem, base=0x10)
    a1 = arena.alloc(10, align=16)
    a2 = arena.alloc(10, align=16)
    assert a1 % 16 == 0 and a2 % 16 == 0
    assert a2 >= a1 + 10


def test_arena_alloc_array():
    mem = FlatMemory(1 << 13)
    arena = Arena(mem)
    arr = np.arange(8, dtype=np.uint8)
    addr = arena.alloc_array(arr)
    assert list(mem.read(addr, 8)) == list(range(8))


def test_arena_exhaustion():
    mem = FlatMemory(256)
    arena = Arena(mem, base=0)
    with pytest.raises(MemoryError_):
        arena.alloc(512)


@given(st.integers(0, 1000), st.integers(0, (1 << 64) - 1))
@settings(max_examples=50)
def test_u64_roundtrip_property(offset, value):
    mem = FlatMemory(4096)
    mem.write_u64(offset, value)
    assert mem.read_u64(offset) == value


@given(st.binary(min_size=1, max_size=64), st.integers(0, 100))
@settings(max_examples=50)
def test_write_read_bytes_property(blob, addr):
    mem = FlatMemory(1024)
    mem.write(addr, blob)
    assert bytes(mem.read(addr, len(blob))) == blob
