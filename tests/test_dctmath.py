"""Fixed-point DCT math: exactness of mirrors, closeness to float."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import dctmath

blocks_i16 = st.lists(
    st.integers(-255, 255), min_size=64, max_size=64
).map(lambda xs: np.array(xs, dtype=np.int16).reshape(8, 8))


def test_dct_matrix_orthonormal():
    c = dctmath.dct_matrix()
    assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)


def test_dct_matrix_q15_range():
    cq = dctmath.dct_matrix_q15()
    assert cq.dtype == np.int16
    assert abs(cq).max() <= 23171  # sqrt(2)/2 in Q15, rounded


def test_mulhrs_matches_scalar_definition():
    a = np.array([1000, -1000, 32767, -32768], dtype=np.int16)
    b = np.array([16384, 16384, 32767, -32768], dtype=np.int16)
    out = dctmath.mulhrs(a, b)
    for x, y, got in zip(a.astype(int), b.astype(int), out.astype(int)):
        expected = (x * y + (1 << 14)) >> 15
        expected = max(-32768, min(32767, expected))
        assert got == expected


def test_fdct_close_to_float():
    rng = np.random.default_rng(0)
    block = rng.integers(-128, 128, size=(8, 8)).astype(np.int16)
    fixed = dctmath.fdct_fixed(block).astype(np.float64) / 8.0
    exact = dctmath.fdct_reference_float(block)
    assert np.abs(fixed - exact).max() < 2.0


def test_idct_close_to_float():
    rng = np.random.default_rng(1)
    # multiples of 4 so the PSRAW-2 pre-scale loses no bits; what is
    # left is pure Q15 rounding noise
    block = (rng.integers(-256, 256, size=(8, 8)) * 4).astype(np.int16)
    fixed = dctmath.idct_fixed(block).astype(np.float64) * 4.0
    exact = dctmath.idct_reference_float(block)
    # each output accumulates 16 Q15 roundings of +-0.5, scaled by 4:
    # the error bound is 4 * 16 * 0.5 / 2 = 16 in the worst case
    assert np.abs(fixed - exact).max() < 16.0


def test_fdct_idct_roundtrip_tolerance():
    rng = np.random.default_rng(2)
    block = rng.integers(-100, 100, size=(8, 8)).astype(np.int16)
    coeffs = dctmath.fdct_fixed(block)  # 8x scaled
    # idct_fixed returns IDCT(F)/4 = 8x/4 = 2x the original
    back = dctmath.idct_fixed(coeffs).astype(np.float64) / 2.0
    assert np.abs(back - block).max() < 4.0


def test_scipy_cross_check():
    scipy = pytest.importorskip("scipy")
    from scipy.fftpack import dct

    rng = np.random.default_rng(3)
    block = rng.integers(-128, 128, size=(8, 8)).astype(np.float64)
    ours = dctmath.fdct_reference_float(block)
    theirs = dct(dct(block.T, norm="ortho").T, norm="ortho")
    assert np.allclose(ours, theirs, atol=1e-9)


@given(blocks_i16)
@settings(max_examples=30)
def test_row_then_col_equals_full_fixed_pipeline(block):
    cq = dctmath.dct_matrix_q15()
    x = dctmath.sllw(block, 3)
    via_passes = dctmath.col_pass_fixed(
        cq, dctmath.row_pass_fixed(x, cq.T))
    assert np.array_equal(via_passes, dctmath.fdct_fixed(block))


@given(blocks_i16)
@settings(max_examples=30)
def test_fixed_passes_stay_in_i16(block):
    out = dctmath.fdct_fixed(block)
    assert out.dtype == np.int16


def test_bcast16_pattern():
    assert dctmath.bcast16(1) == 0x0001_0001_0001_0001
    assert dctmath.bcast16(-1) == 0xFFFF_FFFF_FFFF_FFFF


def test_lane_pattern_order():
    # lane 0 in the least significant 16 bits
    assert dctmath.lane_pattern([1, 2, 3, 4]) == 0x0004_0003_0002_0001
