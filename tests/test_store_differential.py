"""Layout differential: file vs segment caches must be observationally
identical.

The acceptance criterion for the segmented store: the fig3 + fig9 +
table1 grids produce byte-identical ``RunStats.to_dict()`` results and
identical ``EngineStats`` counters whether the cache is backed by
loose per-digest JSON files or by append-only segments — cold and
warm, across the inline, process and remote execution backends — and
a cache migrated from the file layout answers a warm restart with
``simulations=0``.
"""

import dataclasses
import threading

import pytest

from repro.engine import Engine, InlineBackend, ProcessBackend, RemoteBackend
from repro.harness.experiments import paper_grids
from repro.service import ServiceWorker, background_server

GRID = paper_grids()


def _stats_dicts(results) -> dict:
    return {spec: stats.to_dict() for spec, stats in results.items()}


def _counters(engine) -> dict:
    return dataclasses.asdict(engine.stats)


def _run(cache_dir, layout, backend=None, jobs=1):
    engine = Engine(jobs=jobs, cache_dir=cache_dir, cache_layout=layout,
                    backend=backend)
    results = engine.run_many(GRID)
    engine.cache.flush()
    return _stats_dicts(results), _counters(engine)


def test_paper_grids_file_vs_segment_cold_and_warm(tmp_path):
    file_cold, file_cold_stats = _run(tmp_path / "file", "file")
    seg_cold, seg_cold_stats = _run(tmp_path / "seg", "segment")
    assert file_cold == seg_cold
    assert file_cold_stats == seg_cold_stats
    assert seg_cold_stats["simulations"] == len(GRID)

    # warm: fresh engines over the same directories, autodetected
    file_warm, file_warm_stats = _run(tmp_path / "file", "auto")
    seg_warm, seg_warm_stats = _run(tmp_path / "seg", "auto")
    assert file_warm == seg_warm == file_cold
    assert file_warm_stats == seg_warm_stats
    assert seg_warm_stats["simulations"] == 0
    assert seg_warm_stats["disk_hits"] == len(GRID)


def test_paper_grids_layout_parity_across_backends(tmp_path):
    reference, _ = _run(tmp_path / "ref", "file", backend=InlineBackend())

    process, process_stats = _run(tmp_path / "proc", "segment",
                                  backend=ProcessBackend(jobs=2), jobs=2)
    assert process == reference
    assert process_stats["simulations"] == len(GRID)

    backend = RemoteBackend(lease_ttl=10.0, wait_timeout=120.0)
    engine = Engine(cache_dir=tmp_path / "remote",
                    cache_layout="segment", backend=backend)
    with background_server(engine, window=0.01) as server:
        workers = [ServiceWorker(server.url, Engine(use_cache=False),
                                 worker_id=f"w{i}", poll_interval=0.02)
                   for i in range(2)]
        threads = [threading.Thread(target=worker.run, daemon=True)
                   for worker in workers]
        for thread in threads:
            thread.start()
        try:
            remote = engine.run_many(GRID, jobs=4)
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=30)
    assert _stats_dicts(remote) == reference
    engine.cache.flush()
    # the remote run's admissions persisted: a warm engine over the
    # same segment cache replays the grid without simulating
    warm, warm_stats = _run(tmp_path / "remote", "auto")
    assert warm == reference
    assert warm_stats["simulations"] == 0


def test_migrated_cache_warm_restart_answers_without_simulating(tmp_path):
    cold, cold_stats = _run(tmp_path, "file")
    assert cold_stats["simulations"] == len(GRID)

    migrating = Engine(cache_dir=tmp_path, cache_layout="auto")
    assert migrating.cache.layout == "file"
    summary = migrating.cache.migrate(to="segment")
    assert summary["migrated"] == len(GRID)
    assert summary["skipped"] == 0

    warm = Engine(cache_dir=tmp_path, cache_layout="auto")
    assert warm.cache.layout == "segment"
    results = warm.run_many(GRID)
    assert _stats_dicts(results) == cold
    assert warm.stats.simulations == 0
    assert warm.stats.disk_hits == len(GRID)
