"""Property-based tests for the explore subsystem's pure core.

Everything the exploration driver leans on is a pure function over
score vectors (``repro.explore.pareto``), so the guarantees are stated
directly:

* :func:`dominates` is a strict partial order;
* :func:`pareto_frontier` is invariant, as a vector set, under input
  shuffling and duplication, and never returns a dominated vector;
* :func:`prunes` equals weak dominance at ``margin=0`` and prunes
  monotonically less as the margin grows;
* on *order-consistent* tables — full scores are a coordinate-wise
  strictly increasing transform of the rung scores — successive
  halving never removes a vector the full-evaluation frontier needs;
* :func:`epsilon_constraint` answers satisfy the constraint, are
  optimal among the feasible, and are unchanged (as objective values)
  by dominance pruning of the input.

Run under the fixed ``ci`` profile (registered in ``conftest.py``) in
CI: ``pytest --hypothesis-profile=ci``.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.explore import (
    dominates,
    epsilon_constraint,
    halving_survivors,
    pareto_frontier,
    prunes,
)

#: Small-integer coordinates make ties and dominance chains common —
#: exactly the cases the frontier and pruning logic must handle.
vectors3 = st.tuples(st.integers(0, 6), st.integers(0, 6),
                     st.integers(0, 6))
vector_lists = st.lists(vectors3, min_size=0, max_size=12)


# -- dominance is a strict partial order -------------------------------------


@given(vectors3)
def test_dominates_irreflexive(a):
    assert not dominates(a, a)


@given(vectors3, vectors3)
def test_dominates_antisymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@given(vectors3, vectors3, vectors3)
def test_dominates_transitive(a, b, c):
    if dominates(a, b) and dominates(b, c):
        assert dominates(a, c)


def test_dominates_rejects_length_mismatch():
    with pytest.raises(ValueError):
        dominates((1.0, 2.0), (1.0, 2.0, 3.0))


# -- frontier invariance -----------------------------------------------------


@given(vector_lists, st.randoms(use_true_random=False))
def test_frontier_invariant_under_shuffle(items, rng):
    reference = set(pareto_frontier(items))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert set(pareto_frontier(shuffled)) == reference


@given(vector_lists, st.randoms(use_true_random=False))
def test_frontier_invariant_under_duplication(items, rng):
    reference = set(pareto_frontier(items))
    doubled = items + [rng.choice(items)] * 2 if items else []
    assert set(pareto_frontier(doubled)) == reference


@given(vector_lists)
def test_frontier_members_are_non_dominated(items):
    frontier = pareto_frontier(items)
    for member in frontier:
        assert not any(dominates(other, member) for other in items)
    # and everything excluded is dominated by something
    for excluded in set(items) - set(frontier):
        assert any(dominates(other, excluded) for other in items)


# -- margin-guarded pruning --------------------------------------------------


@given(vectors3, vectors3)
def test_prunes_at_zero_margin_is_weak_dominance(a, b):
    assert prunes(a, b, margin=0.0) == dominates(a, b)


@given(vectors3, vectors3,
       st.floats(0.0, 0.5, allow_nan=False),
       st.floats(0.0, 0.5, allow_nan=False))
def test_prunes_monotone_in_margin(a, b, m1, m2):
    low, high = sorted((m1, m2))
    if prunes(a, b, margin=high):
        assert prunes(a, b, margin=low)


@given(vectors3, vectors3, st.floats(0.0, 0.5, allow_nan=False))
def test_prunes_exact_coordinates_ignore_margin(a, b, margin):
    """With no estimated coordinates the margin never blocks a kill."""
    exact = (False,) * len(a)
    assert prunes(a, b, margin=margin, estimated=exact) \
        == dominates(a, b)


#: (rung_vector, full_vector) pairs where full is a coordinate-wise
#: strictly increasing transform of rung — the order-consistent model
#: under which halving is exact.
@st.composite
def monotone_tables(draw):
    scale = draw(st.tuples(*[st.integers(1, 3)] * 3))
    shift = draw(st.tuples(*[st.integers(0, 5)] * 3))
    rungs = draw(st.lists(vectors3, min_size=1, max_size=10))
    fulls = [tuple(s * x + t for x, s, t in zip(vec, scale, shift))
             for vec in rungs]
    return list(zip(rungs, fulls))


@given(monotone_tables(), st.floats(0.0, 0.3, allow_nan=False))
def test_halving_never_costs_a_frontier_vector(table, margin):
    """Frontier of full scores is reachable from the rung survivors.

    Pruning on the rung scores, then fully evaluating only the
    survivors, must yield the same frontier *as a vector set* as fully
    evaluating everything.  (Individual tied duplicates may be pruned
    — the frontier keeps a surviving copy.)
    """
    survivors, pruned = halving_survivors(
        table, key=lambda pair: pair[0], margin=margin)
    assert sorted(survivors + pruned) == sorted(table)
    full_of = lambda pair: pair[1]  # noqa: E731
    want = {full_of(p) for p in pareto_frontier(table, key=full_of)}
    got = {full_of(p) for p in pareto_frontier(survivors, key=full_of)}
    assert got == want


@given(st.lists(vectors3, min_size=1, max_size=8),
       st.lists(vectors3, min_size=0, max_size=4))
def test_halving_extra_dominators_only_shrink_survivors(items, extra):
    base, _ = halving_survivors(items)
    with_extra, _ = halving_survivors(items, extra=extra)
    assert set(with_extra) <= set(base)


# -- epsilon constraint ------------------------------------------------------


@given(vector_lists, st.floats(0.0, 1.0, allow_nan=False))
def test_epsilon_constraint_relative_answers_are_feasible(items, within):
    value = lambda v: v[0]     # noqa: E731
    minimize = lambda v: v[2]  # noqa: E731
    best, bound = epsilon_constraint(items, value=value,
                                     minimize=minimize, within=within)
    if not items:
        assert best is None and bound is None
        return
    assert bound == min(value(v) for v in items) * (1 + within)
    assert best is not None  # the argmin of value is always feasible
    assert value(best) <= bound
    feasible = [v for v in items if value(v) <= bound]
    assert minimize(best) == min(minimize(v) for v in feasible)


@given(vector_lists, st.integers(0, 6))
def test_epsilon_constraint_absolute_answers_are_feasible(items, limit):
    value = lambda v: v[0]     # noqa: E731
    minimize = lambda v: v[2]  # noqa: E731
    best, bound = epsilon_constraint(items, value=value,
                                     minimize=minimize, limit=limit)
    assert bound == limit
    feasible = [v for v in items if value(v) <= limit]
    if not feasible:
        assert best is None
    else:
        assert value(best) <= limit
        assert minimize(best) == min(minimize(v) for v in feasible)


@given(st.lists(vectors3, min_size=1, max_size=12),
       st.floats(0.0, 1.0, allow_nan=False))
def test_epsilon_constraint_survives_dominance_pruning(items, within):
    """Pruning dominated vectors never changes the answer's scores.

    The exploration driver evaluates only halving survivors, so the
    constrained optimum must be recoverable from a non-dominated
    subset — same bound, same (minimize, value) optimum.
    """
    value = lambda v: v[0]     # noqa: E731
    minimize = lambda v: v[2]  # noqa: E731
    best_all, bound_all = epsilon_constraint(
        items, value=value, minimize=minimize, within=within)
    frontier = pareto_frontier(items)
    best_front, bound_front = epsilon_constraint(
        frontier, value=value, minimize=minimize, within=within)
    assert bound_front == bound_all
    assert minimize(best_front) == minimize(best_all)
    assert value(best_front) <= bound_all


def test_epsilon_constraint_requires_exactly_one_bound():
    with pytest.raises(ValueError):
        epsilon_constraint([(1.0,)], value=lambda v: v[0],
                           minimize=lambda v: v[0])
    with pytest.raises(ValueError):
        epsilon_constraint([(1.0,)], value=lambda v: v[0],
                           minimize=lambda v: v[0],
                           within=0.1, limit=2.0)
