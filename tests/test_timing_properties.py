"""Property-based equivalence tests for the batched timing model.

Hypothesis generates short random ``Program``s mixing scalar memory,
2D/3D vector memory, uSIMD arithmetic, accumulator reductions, control
and branches — with random strides, vector lengths and element widths —
and asserts that the batched pipeline's ``RunStats`` equal the
reference pipeline's on every draw.  A separate property pins
``touch_sequence`` to the naive double-loop oracle it replaced.

Run under the fixed ``ci`` profile (registered in ``conftest.py``) in
CI: ``pytest --hypothesis-profile=ci``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.keys import RunSpec
from repro.engine.parallel import build_configs
from repro.isa import ElemType, Opcode, ProgramBuilder, acc, d3, r, v
from repro.timing import simulate
from repro.timing.predecode import touch_sequence

_SIMD_TWO_SRC = (Opcode.PADDB, Opcode.PADDW, Opcode.PMULLW,
                 Opcode.PAVGB, Opcode.PSADBW, Opcode.PUNPCKLBW)

_EA = st.integers(min_value=0, max_value=1 << 18)
_STRIDE = st.integers(min_value=-512, max_value=1024)


@st.composite
def _programs(draw):
    builder = ProgramBuilder("prop")
    count = draw(st.integers(min_value=1, max_value=48))
    for _ in range(count):
        kind = draw(st.sampled_from(
            ("int", "int", "simd", "simd", "vld", "vst", "ld", "st",
             "dvload3", "dvmov3", "setvl", "branch", "acc")))
        if kind == "int":
            builder.addi(r(draw(st.integers(0, 7))),
                         r(draw(st.integers(0, 7))),
                         draw(st.integers(0, 255)))
        elif kind == "simd":
            builder.simd(draw(st.sampled_from(_SIMD_TWO_SRC)),
                         v(draw(st.integers(0, 15))),
                         v(draw(st.integers(0, 15))),
                         v(draw(st.integers(0, 15))),
                         etype=draw(st.sampled_from(
                             (ElemType.U8, ElemType.I16))))
        elif kind == "vld":
            builder.vld(v(draw(st.integers(0, 15))), ea=draw(_EA),
                        stride=draw(_STRIDE),
                        etype=draw(st.sampled_from(
                            (ElemType.U8, ElemType.I16, None))))
        elif kind == "vst":
            builder.vst(v(draw(st.integers(0, 15))), ea=draw(_EA),
                        stride=draw(_STRIDE))
        elif kind == "ld":
            builder.ld(r(draw(st.integers(0, 7))), ea=draw(_EA))
        elif kind == "st":
            builder.st(r(draw(st.integers(0, 7))), ea=draw(_EA))
        elif kind == "dvload3":
            builder.dvload3(d3(draw(st.integers(0, 1))), ea=draw(_EA),
                            stride=draw(_STRIDE),
                            wwords=draw(st.integers(1, 16)),
                            back=draw(st.booleans()))
        elif kind == "dvmov3":
            builder.dvmov3(v(draw(st.integers(0, 15))),
                           d3(draw(st.integers(0, 1))),
                           pstride=draw(st.integers(-64, 64)))
        elif kind == "setvl":
            builder.setvl(draw(st.integers(1, 16)))
        elif kind == "branch":
            builder.branch()
        else:  # acc
            a = acc(draw(st.integers(0, 1)))
            if draw(st.booleans()):
                builder.clracc(a)
            else:
                builder.vpsadacc(a, v(draw(st.integers(0, 15))),
                                 v(draw(st.integers(0, 15))))
    return builder.program


@given(program=_programs(),
       memsys_name=st.sampled_from(("ideal", "vector", "multibank")),
       l2_latency=st.sampled_from((5, 20, 60)),
       warm=st.booleans())
@settings(deadline=None, max_examples=60)
def test_batched_matches_reference_on_random_programs(
        program, memsys_name, l2_latency, warm):
    spec = RunSpec(benchmark="gsm_encode", coding="mom3d",
                   memsys=memsys_name, l2_latency=l2_latency)
    proc, memsys = build_configs(spec)
    reference = simulate(program, proc, memsys, warm=warm,
                         model="reference")
    batched = simulate(program, proc, memsys, warm=warm, model="batched")
    assert batched.to_dict() == reference.to_dict(), \
        batched.diff(reference)


@given(program=_programs(), warm=st.booleans())
@settings(deadline=None, max_examples=30)
def test_batched_matches_reference_on_mmx(program, warm):
    """The MMX routing (all media through the L1) agrees as well."""
    if any(inst.op is Opcode.DVLOAD3 for inst in program):
        program.instructions = [inst for inst in program
                                if inst.op is not Opcode.DVLOAD3]
    if any(inst.op is Opcode.DVMOV3 for inst in program):
        program.instructions = [inst for inst in program
                                if inst.op is not Opcode.DVMOV3]
    spec = RunSpec(benchmark="gsm_encode", coding="mmx",
                   memsys="multibank")
    proc, memsys = build_configs(spec)
    reference = simulate(program, proc, memsys, warm=warm,
                         model="reference")
    batched = simulate(program, proc, memsys, warm=warm, model="batched")
    assert batched.to_dict() == reference.to_dict(), \
        batched.diff(reference)


def _naive_touch_sequence(ea, count, stride, width, line_bytes):
    """The double loop ``touch_sequence`` replaced: element k's lines
    ascending, consecutive duplicates collapsed."""
    naive = []
    for k in range(count):
        addr = ea + k * stride
        first = addr - addr % line_bytes
        last = (addr + width - 1) - (addr + width - 1) % line_bytes
        current = first
        while current <= last:
            if not naive or naive[-1] != current:
                naive.append(current)
            current += line_bytes
    return naive


@given(ea=st.integers(0, 1 << 20),
       count=st.integers(0, 24),
       stride=st.integers(-512, 1024),
       width=st.sampled_from((8, 16, 24, 64, 128)),
       line_bytes=st.sampled_from((32, 64, 128)))
@settings(deadline=None, max_examples=300)
def test_touch_sequence_matches_naive_double_loop(ea, count, stride,
                                                  width, line_bytes):
    assert touch_sequence(ea, count, stride, width, line_bytes) == \
        _naive_touch_sequence(ea, count, stride, width, line_bytes)
