"""Admission control, job deadlines, client retry budget, graceful
drain, and cache degradation — the service's refusal-and-recovery
surfaces.

Unit halves run on injectable clocks (no real sleeping); the HTTP
halves run over a real socket through :func:`background_server` to pin
the status codes and ``Retry-After`` headers actual clients see.
"""

import asyncio

import pytest

from repro.engine import Engine, ResultCache, RunSpec
from repro.engine.store import CorruptFrameError, SegmentStore
from repro.service import (
    AdmissionController,
    Job,
    JobRequest,
    QuotaExceeded,
    SchemaError,
    ServiceClient,
    ServiceError,
    background_server,
)
from repro.service.admission import TokenBucket
from repro.service.client import _parse_retry_after
from repro.service.schema import JOB_STATUSES, spec_to_wire
from repro.timing.stats import RunStats

BENCH = "gsm_encode"
SPEC = RunSpec(BENCH, "mom", "ideal")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# --- token buckets and the admission controller ------------------------------


def test_token_bucket_refills_continuously():
    clock = FakeClock()
    bucket = TokenBucket(60, clock=clock)  # 1 token/second
    assert bucket.take(60) == 0.0  # full burst admitted
    wait = bucket.take(1)
    assert wait == pytest.approx(1.0)  # empty: 1s to mint one token
    clock.now += 1.0
    assert bucket.take(1) == 0.0


def test_token_bucket_caps_impossible_requests():
    clock = FakeClock()
    bucket = TokenBucket(10, clock=clock)
    # 100 tokens can never fit a 10-token bucket: the hint is the
    # time to refill to *capacity*, not to the impossible amount
    assert bucket.take(100) == pytest.approx(60.0)


def test_admission_controller_rate_limit():
    clock = FakeClock()
    controller = AdmissionController(requests_per_minute=2,
                                     clock=clock)
    controller.admit("alice")
    controller.admit("alice")
    with pytest.raises(QuotaExceeded) as info:
        controller.admit("alice")
    assert info.value.what == "request-rate"
    assert info.value.retry_after > 0
    assert "alice" in str(info.value)
    controller.admit("bob")  # other clients have their own bucket
    clock.now += 60.0
    controller.admit("alice")  # refilled
    stats = controller.stats()
    assert stats["throttled"] == 1
    assert stats["admitted"] == 4
    assert stats["clients"] == 2


def test_admission_controller_spec_volume_limit():
    clock = FakeClock()
    controller = AdmissionController(specs_per_minute=10, clock=clock)
    controller.admit("alice", specs=10)
    with pytest.raises(QuotaExceeded) as info:
        controller.admit("alice", specs=1)
    assert info.value.what == "spec-volume"


def test_disabled_controller_admits_everything_statelessly():
    controller = AdmissionController()
    assert not controller.enabled
    for _ in range(1000):
        controller.admit("anyone", specs=10_000)
    assert controller.clients() == 0  # no per-client state allocated


def test_quota_429_with_retry_after_over_http():
    controller = AdmissionController(requests_per_minute=1)
    engine = Engine(use_cache=False)
    with background_server(engine, window=0.01,
                           admission=controller) as server:
        client = ServiceClient(server.url, client_id="tester")
        client.submit([SPEC])
        with pytest.raises(ServiceError) as info:
            client.submit([SPEC])
        assert info.value.status == 429
        assert info.value.reply.code == "quota-exceeded"
        assert info.value.retry_after is not None
        assert info.value.retry_after >= 1
        # a different identity is not throttled by alice's bucket
        other = ServiceClient(server.url, client_id="other")
        other.submit([SPEC])
        stats = client.stats()
        assert stats["admission"]["throttled"] == 1


# --- client retry budget ------------------------------------------------------


def _budgeted_client(budget: float):
    clock = FakeClock()
    slept = []

    def sleep(seconds: float) -> None:
        slept.append(seconds)
        clock.now += seconds

    client = ServiceClient("http://127.0.0.1:1", retry_budget=budget,
                           clock=clock, sleep=sleep)
    return client, clock, slept


def test_retry_budget_honors_retry_after():
    client, _clock, slept = _budgeted_client(10.0)
    calls = []

    def send(method, path, payload=None):
        calls.append(path)
        if len(calls) < 3:
            raise ServiceError(429, None, retry_after=3.0)
        return {"ok": True}

    client._send = send
    assert client._request("POST", "/v1/jobs", {}) == {"ok": True}
    assert slept == [3.0, 3.0]
    assert len(calls) == 3


def test_retry_budget_refuses_waits_it_cannot_afford():
    client, _clock, slept = _budgeted_client(10.0)
    calls = []

    def send(method, path, payload=None):
        calls.append(path)
        raise ServiceError(503, None, retry_after=20.0)

    client._send = send
    with pytest.raises(ServiceError):
        client._request("POST", "/v1/jobs", {})
    assert len(calls) == 1  # a 20s wait never fit a 10s budget
    assert slept == []


def test_no_budget_fails_fast():
    client = ServiceClient("http://127.0.0.1:1")
    calls = []

    def send(method, path, payload=None):
        calls.append(path)
        raise ServiceError(429, None, retry_after=1.0)

    client._send = send
    with pytest.raises(ServiceError):
        client._request("POST", "/v1/jobs", {})
    assert len(calls) == 1


def test_non_retryable_statuses_raise_immediately():
    client, _clock, _slept = _budgeted_client(60.0)

    def send(method, path, payload=None):
        raise ServiceError(400, None)

    client._send = send
    with pytest.raises(ServiceError):
        client._request("POST", "/v1/jobs", {})


def test_retry_after_header_parsing():
    assert _parse_retry_after(None) is None
    assert _parse_retry_after("2") == 2.0
    assert _parse_retry_after(" 1.5 ") == 1.5
    assert _parse_retry_after("-3") == 0.0
    assert _parse_retry_after("soon") is None


# --- job deadlines ------------------------------------------------------------


def test_job_statuses_include_expired():
    assert "expired" in JOB_STATUSES


def test_job_request_deadline_rides_the_wire():
    request = JobRequest(specs=(SPEC,), deadline=2.5)
    wire = request.to_wire()
    assert wire["deadline"] == 2.5
    assert JobRequest.from_wire(wire).deadline == 2.5
    assert "deadline" not in JobRequest(specs=(SPEC,)).to_wire()


def test_job_request_deadline_validation():
    with pytest.raises(SchemaError):
        JobRequest(specs=(SPEC,), deadline=0)
    base = JobRequest(specs=(SPEC,)).to_wire()
    for bad in (-1, 0, True, "soon"):
        with pytest.raises(SchemaError):
            JobRequest.from_wire({**base, "deadline": bad})


def test_job_expires_at_deadline_with_structured_error():
    loop = asyncio.new_event_loop()
    try:
        clock = FakeClock()
        future = loop.create_future()
        job = Job([SPEC], [future], deadline=5.0, clock=clock)
        assert job.status() == "running"
        clock.now = 4.99
        assert job.status() == "running"
        clock.now = 5.0
        assert job.status() == "expired"
        snapshot = job.snapshot()
        assert snapshot.status == "expired"
        assert "deadline of 5s exceeded" in snapshot.error
        assert "1 of 1" in snapshot.error
        # the simulation is never cancelled: a late result still
        # resolves the job (and warmed the cache for a resubmission)
        future.set_result(RunStats(name="x"))
        assert job.status() == "done"
    finally:
        loop.close()


def test_job_finishing_before_deadline_stays_done():
    loop = asyncio.new_event_loop()
    try:
        clock = FakeClock()
        future = loop.create_future()
        future.set_result(RunStats(name="x"))
        job = Job([SPEC], [future], deadline=5.0, clock=clock)
        clock.now = 100.0
        assert job.status() == "done"
    finally:
        loop.close()


def test_job_without_deadline_never_expires():
    loop = asyncio.new_event_loop()
    try:
        clock = FakeClock()
        job = Job([SPEC], [loop.create_future()], clock=clock)
        clock.now = 1e9
        assert job.status() == "running"
    finally:
        loop.close()


# --- graceful drain -----------------------------------------------------------


def test_drain_refuses_work_and_reports_clean():
    engine = Engine(use_cache=False)
    with background_server(engine, window=0.01) as server:
        client = ServiceClient(server.url)
        client.run_many([SPEC])  # normal service before the drain

        loop = server._server.get_loop()
        clean = asyncio.run_coroutine_threadsafe(
            server.drain(5.0), loop).result(timeout=10)
        assert clean is True  # nothing was in flight
        assert server.draining

        with pytest.raises(ServiceError) as info:
            client.submit([SPEC])
        assert info.value.status == 503
        assert info.value.reply.code == "draining"
        assert info.value.retry_after is not None
        assert client.stats()["draining"] is True
        # reads stay up throughout the grace period
        assert client.health()["status"] == "ok"
        metrics = client.metrics()
        assert "repro_server_draining 1" in metrics


# --- cache degradation --------------------------------------------------------


class BrokenStore:
    """A segment store whose disk has gone away."""

    index: dict = {}

    def get(self, digest):
        raise OSError("injected: disk gone")

    def fetch_raw_many(self, digests):
        raise OSError("injected: disk gone")

    def append_many(self, items):
        raise OSError("injected: disk gone")

    def flush(self):
        raise OSError("injected: disk gone")


def test_cache_degrades_to_memo_only_on_store_errors(tmp_path):
    cache = ResultCache(tmp_path, layout="segment")
    cache._store = BrokenStore()
    stats = RunStats(name="x")
    cache.put(SPEC, stats)  # absorbed, not raised
    assert cache.get(SPEC) is None
    assert cache.get_many([SPEC]) == {}
    assert cache.put_many([(SPEC, stats)]) == 0
    counters = cache.degraded_counters()
    assert counters["writes"] == 2
    assert counters["reads"] == 2


def test_degraded_cache_does_not_fail_the_engine(tmp_path):
    engine = Engine(cache_dir=tmp_path, cache_layout="segment")
    engine.cache._store = BrokenStore()
    results = engine.run_many([SPEC])  # must succeed memo-only
    assert SPEC in results
    assert engine.cache.degraded_counters()["writes"] >= 1
    # and the memo still serves repeats without touching the store
    again = engine.run_many([SPEC])
    assert again[SPEC].to_dict() == results[SPEC].to_dict()


# --- compaction quarantine ----------------------------------------------------


def _digest(i: int) -> str:
    return f"{i:064x}"


def test_compaction_quarantines_crc_failures(tmp_path):
    # tiny segments: every record seals its own segment, so compaction
    # always has overhead to reclaim (and therefore actually runs)
    store = SegmentStore(tmp_path, max_segment_bytes=1)
    store.append_many([(_digest(1), {"tag": "alpha"}),
                       (_digest(2), {"tag": "beta"})])
    store.flush()

    # rot one payload byte on disk without touching the framing
    for segment in sorted(tmp_path.glob("*.seg")):
        data = segment.read_bytes()
        if b"alpha" in data:
            segment.write_bytes(data.replace(b"alpha", b"alphb", 1))
            break
    else:
        pytest.fail("no segment contained the payload")

    with pytest.raises(CorruptFrameError) as info:
        SegmentStore(tmp_path, max_segment_bytes=1).compact()
    err = info.value
    assert [digest for digest, _ in err.quarantined] == [_digest(1)]
    assert "recomputed" in str(err)
    sidecar = tmp_path / f"{_digest(1)}.corrupt"
    assert sidecar.exists()

    # the store is left compacted and consistent: the rotted record
    # is gone, the healthy one survived
    survivor = SegmentStore(tmp_path)
    assert survivor.get(_digest(1)) is None
    assert survivor.get(_digest(2)) == {"tag": "beta"}
    assert survivor.compact() == (0, 0)  # nothing left to do


def test_cache_gc_cli_exits_nonzero_on_corruption(tmp_path, capsys):
    from repro.cli import main

    cache = ResultCache(tmp_path, layout="segment")
    cache._store = SegmentStore(cache.dir, max_segment_bytes=1)
    stats = RunStats(name="x")
    other = RunSpec(BENCH, "mom3d", "ideal")
    cache.put(SPEC, stats)
    cache.put(other, stats)
    cache.flush()

    target = SPEC.digest().encode("ascii")
    for segment in sorted(cache.dir.glob("*.seg")):
        data = segment.read_bytes()
        marker = b'"benchmark"'
        if target in data and marker in data:
            segment.write_bytes(data.replace(marker, b'"benchmbrk"', 1))
            break
    else:
        pytest.fail("no segment contained the entry payload")

    code = main(["--cache-dir", str(tmp_path), "cache", "gc"])
    assert code == 1
    err = capsys.readouterr().err
    assert "quarantined" in err
    assert ".corrupt" in err or "recompute" in err


def test_cache_gc_cli_clean_store_exits_zero(tmp_path, capsys):
    from repro.cli import main

    cache = ResultCache(tmp_path, layout="segment")
    cache.put(SPEC, RunStats(name="x"))
    cache.flush()
    assert main(["--cache-dir", str(tmp_path), "cache", "gc"]) == 0
