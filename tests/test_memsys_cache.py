"""Unit + property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsys import SetAssocCache


def small_cache(ways=2, lines=8, line_bytes=32):
    return SetAssocCache(size_bytes=line_bytes * lines, line_bytes=line_bytes,
                         ways=ways, name="t")


def test_geometry():
    c = SetAssocCache(2 * 1024 * 1024, 128, 4, name="L2")
    assert c.n_sets == 4096


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        SetAssocCache(1000, 32, 3)


def test_cold_miss_then_hit():
    c = small_cache()
    assert c.access(0x100) is False
    assert c.access(0x100) is True
    assert c.access(0x11F) is True  # same 32-byte line
    assert c.access(0x120) is False  # next line


def test_lru_eviction_order():
    c = small_cache(ways=2, lines=8, line_bytes=32)
    # set count = 4; three lines mapping to set 0: addresses k*4*32
    s = 4 * 32
    c.access(0 * s)
    c.access(1 * s)
    c.access(0 * s)  # 0 is now MRU
    c.access(2 * s)  # evicts 1
    assert c.probe(0 * s) is True
    assert c.probe(1 * s) is False
    assert c.probe(2 * s) is True


def test_writeback_counted_for_dirty_victims():
    c = small_cache(ways=1, lines=4, line_bytes=32)
    s = 4 * 32
    c.access(0, is_write=True)
    c.access(s)  # evicts dirty line 0
    assert c.stats.writebacks == 1
    c.access(2 * s)  # evicts clean line s
    assert c.stats.writebacks == 1


def test_write_through_cache_has_no_writebacks():
    c = SetAssocCache(4 * 32, 32, 1, write_back=False)
    s = 4 * 32
    c.access(0, is_write=True)
    c.access(s)
    assert c.stats.writebacks == 0


def test_invalidate():
    c = small_cache()
    c.access(0x40)
    assert c.invalidate(0x40) is True
    assert c.probe(0x40) is False
    assert c.invalidate(0x40) is False


def test_exclusive_bit():
    c = small_cache()
    c.access(0x40)
    assert c.is_scalar_owned(0x40) is False
    c.set_scalar_owned(0x40, True)
    assert c.is_scalar_owned(0x40) is True


def test_lines_touched_spanning():
    c = small_cache(line_bytes=32)
    assert c.lines_touched(0, 32) == [0]
    assert c.lines_touched(16, 32) == [0, 32]
    assert c.lines_touched(31, 2) == [0, 32]


def test_stats_hits_plus_misses_equals_accesses():
    c = small_cache()
    for addr in [0, 32, 0, 64, 96, 0, 32]:
        c.access(addr)
    assert c.stats.hits + c.stats.misses == c.stats.accesses == 7


@given(st.lists(st.integers(0, 2 ** 14), min_size=1, max_size=300))
@settings(max_examples=40)
def test_occupancy_never_exceeds_capacity(addrs):
    c = small_cache(ways=2, lines=16, line_bytes=32)
    for addr in addrs:
        c.access(addr)
    for cset in c._sets.values():
        assert len(cset) <= c.ways


@given(st.lists(st.integers(0, 2 ** 12), min_size=1, max_size=200))
@settings(max_examples=40)
def test_repeat_access_is_always_hit(addrs):
    c = small_cache(ways=4, lines=64, line_bytes=32)
    for addr in addrs:
        c.access(addr)
        assert c.access(addr) is True


@given(st.lists(st.integers(0, 2 ** 14), min_size=1, max_size=300))
@settings(max_examples=30)
def test_lru_stack_property_more_ways_never_more_misses(addrs):
    """LRU inclusion: same set count, more ways => subset of misses."""
    n_sets = 8
    narrow = SetAssocCache(32 * n_sets * 2, 32, 2)
    wide = SetAssocCache(32 * n_sets * 4, 32, 4)
    assert narrow.n_sets == wide.n_sets == n_sets
    nm = wm = 0
    for addr in addrs:
        nm += 0 if narrow.access(addr) else 1
        wm += 0 if wide.access(addr) else 1
    assert wm <= nm
