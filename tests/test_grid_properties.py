"""Property-based equivalence tests for grid-axis execution.

Two families of properties pin the grid path to the per-spec batched
path byte for byte:

* **Partition invariance** — any random partition of a spec grid into
  execution batches, under any grid mode, with shuffled group order
  and degenerate single-spec groups, produces exactly the per-spec
  statistics.  This is the contract every backend relies on when it
  shards work: where the group boundaries land can never change a
  result.

* **Random-trace equivalence** — Hypothesis-generated programs (both
  free-form and block-repeated, the latter specifically to engage the
  steady-state fast-forward on non-handwritten code) simulate to the
  same statistics through :class:`~repro.timing.grid.GridPipeline`
  and the batched pipeline across a config group.

Run under the fixed ``ci`` profile (registered in ``conftest.py``) in
CI: ``pytest --hypothesis-profile=ci``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.keys import RunSpec
from repro.engine.parallel import (
    GRID_MODES,
    build_configs,
    execute_spec,
    simulate_specs,
)
from repro.isa import ElemType, Opcode, ProgramBuilder, r, v
from repro.timing import simulate
from repro.timing.grid import GridPipeline

# -- partition invariance ----------------------------------------------------

#: Small spec pool: two trace groups (gsm is the smallest trace) plus
#: latency variants and an ineligible reference-model spec.
_POOL = [
    RunSpec(benchmark="gsm_encode", coding="mom", memsys="vector"),
    RunSpec(benchmark="gsm_encode", coding="mom", memsys="multibank"),
    RunSpec(benchmark="gsm_encode", coding="mom", memsys="ideal"),
    RunSpec(benchmark="gsm_encode", coding="mom", memsys="vector",
            l2_latency=40),
    RunSpec(benchmark="gsm_encode", coding="mom3d", memsys="vector"),
    RunSpec(benchmark="gsm_encode", coding="mom3d", memsys="ideal"),
    RunSpec(benchmark="gsm_encode", coding="mom", memsys="vector",
            warm=False),
    RunSpec(benchmark="gsm_encode", coding="mom", memsys="vector",
            overrides=(("timing_model", "reference"),)),
]


@pytest.fixture(scope="module")
def pool_baseline():
    return {spec: execute_spec(spec).to_dict() for spec in _POOL}


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_random_partitions_bit_identical(pool_baseline, data):
    """Shuffled subsets, arbitrary batch boundaries, any grid mode."""
    subset = data.draw(st.lists(st.sampled_from(_POOL), min_size=1,
                                max_size=len(_POOL), unique=True))
    subset = data.draw(st.permutations(subset))
    mode = data.draw(st.sampled_from(GRID_MODES))
    # cut the sequence into 1..n consecutive batches
    cuts = data.draw(st.sets(st.integers(1, max(1, len(subset) - 1)),
                             max_size=len(subset) - 1)
                     if len(subset) > 1 else st.just(set()))
    bounds = [0, *sorted(cuts), len(subset)]
    results = {}
    for lo, hi in zip(bounds, bounds[1:]):
        if lo < hi:
            results.update(simulate_specs(list(subset[lo:hi]),
                                          grid_mode=mode))
    for spec in subset:
        assert results[spec].to_dict() == pool_baseline[spec], (
            mode, spec.label())


def test_single_spec_groups_match(pool_baseline):
    """N=1 degenerate groups under every mode."""
    for mode in GRID_MODES:
        for spec in _POOL:
            result = simulate_specs([spec], grid_mode=mode)[spec]
            assert result.to_dict() == pool_baseline[spec], (
                mode, spec.label())


# -- random-trace equivalence ------------------------------------------------

_CONFIG_GROUP = [
    build_configs(RunSpec(benchmark="gsm_encode", coding="mom",
                          memsys=memsys))
    for memsys in ("vector", "multibank", "ideal")
]


@st.composite
def _blocks(draw, min_size=2, max_size=14):
    """One straight-line block mixing int, SIMD and memory ops."""
    ops = []
    count = draw(st.integers(min_size, max_size))
    for _ in range(count):
        kind = draw(st.sampled_from(
            ("int", "int", "simd", "vld", "vst", "ld", "st")))
        ops.append((kind,
                    draw(st.integers(0, 7)), draw(st.integers(0, 7)),
                    draw(st.integers(0, 1 << 14)),
                    draw(st.sampled_from((8, 16, 64, 720)))))
    return ops


def _emit(builder, ops, base_ea=0):
    for kind, a, b, ea, stride in ops:
        if kind == "int":
            builder.addi(r(a), r(b), 1)
        elif kind == "simd":
            builder.simd(Opcode.PADDW, v(a % 4), v(b % 4),
                         v((a + b) % 4), etype=ElemType.I16)
        elif kind == "vld":
            builder.vld(v(a % 4), ea=base_ea + ea, stride=stride,
                        etype=ElemType.I16)
        elif kind == "vst":
            builder.vst(v(a % 4), ea=base_ea + ea, stride=stride,
                        etype=ElemType.I16)
        elif kind == "ld":
            builder.ld(r(a), ea=base_ea + ea)
        else:
            builder.st(r(a), ea=base_ea + ea)


def _assert_group_identical(program):
    grid = GridPipeline(program, _CONFIG_GROUP).run(warm=True)
    for (proc, memsys), stats in zip(_CONFIG_GROUP, grid):
        batched = simulate(program, proc, memsys, warm=True,
                           model="batched")
        assert stats.to_dict() == batched.to_dict(), \
            stats.diff(batched)


@given(ops=_blocks(min_size=4, max_size=24),
       vl=st.integers(1, 16))
@settings(max_examples=25, deadline=None)
def test_random_program_grid_identical(ops, vl):
    builder = ProgramBuilder("grid-prop")
    builder.setvl(vl)
    _emit(builder, ops)
    _assert_group_identical(builder.program)


@given(ops=_blocks(), repeats=st.integers(20, 60),
       moving=st.booleans(), vl=st.integers(1, 16))
@settings(max_examples=20, deadline=None)
def test_repeated_block_grid_identical(ops, repeats, moving, vl):
    """Unrolled-loop-shaped traces: repeating a random block long
    enough to cross the skip engine's anchor and window thresholds
    must still be bit-identical — with both stationary and moving
    (per-iteration shifted) buffer addresses."""
    builder = ProgramBuilder("grid-loop")
    builder.setvl(vl)
    for k in range(repeats):
        _emit(builder, ops, base_ea=k * 4096 if moving else 0)
    _assert_group_identical(builder.program)
