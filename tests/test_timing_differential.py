"""Differential oracle: batched pipeline == reference pipeline,
grid pipeline == batched pipeline.

The batched timing model re-derives the reference model's schedule
through pre-decoded arrays, span vectorization and closed-form resource
packing; nothing of that restructuring may move a single statistic.
This suite runs both models over every (benchmark, coding, memsys,
l2_latency) point of the paper's fig3 / fig9 / table1 grids and asserts
``RunStats.to_dict()`` equality field by field.

The grid-axis pipeline (:mod:`repro.timing.grid`) re-derives the same
schedule a third way — shared trace decode, timing-decoupled traffic
replay, precomputed limiter gates and periodic steady-state
fast-forward — and is pinned here to the per-spec batched path for
every paper grid point, warm and cold, under grid-mode ``on``, ``off``
and ``auto`` across all three execution backends.
"""

import threading

import pytest

from repro.engine import Engine, RemoteBackend
from repro.engine.keys import RunSpec
from repro.engine.parallel import (
    build_configs,
    build_workload,
    execute_spec,
)
from repro.harness.experiments import paper_grids
from repro.service import ServiceWorker, background_server
from repro.timing import simulate
from repro.timing.grid import GridPipeline
from repro.workloads import benchmark_names

#: (coding, memory systems) per evaluation grid:
#: fig3 — mom x {multibank, vector, ideal};
#: fig9 — adds mmx x {multibank, ideal} and mom3d x vector;
#: table1 — {mom, mom3d} x vector (subsumed by the two above).
_GRID_CODINGS = (
    ("mom", ("multibank", "vector", "ideal")),
    ("mmx", ("multibank", "ideal")),
    ("mom3d", ("vector",)),
)


def grid_points():
    points = []
    for bench in benchmark_names():
        for coding, memsystems in _GRID_CODINGS:
            for memsys in memsystems:
                points.append((bench, coding, memsys, 20))
    return points


def _run_both(bench, coding, memsys, l2_latency, warm=True):
    spec = RunSpec(benchmark=bench, coding=coding, memsys=memsys,
                   l2_latency=l2_latency)
    proc, memsys_config = build_configs(spec)
    program = build_workload(bench, coding, 0).program
    reference = simulate(program, proc, memsys_config, warm=warm,
                         model="reference")
    batched = simulate(program, proc, memsys_config, warm=warm,
                       model="batched")
    return reference, batched


@pytest.mark.parametrize("bench,coding,memsys,l2_latency", grid_points())
def test_batched_bit_identical_on_paper_grid(bench, coding, memsys,
                                             l2_latency):
    reference, batched = _run_both(bench, coding, memsys, l2_latency)
    ref_dict = reference.to_dict()
    bat_dict = batched.to_dict()
    for field, ref_value in ref_dict.items():
        assert bat_dict[field] == ref_value, (
            f"{field} diverged on {bench}/{coding}/{memsys}: "
            f"{batched.diff(reference)}")
    assert bat_dict == ref_dict


@pytest.mark.parametrize("bench", benchmark_names())
def test_batched_bit_identical_cold(bench):
    """Cold runs skip priming — the compulsory-miss path must agree too."""
    reference, batched = _run_both(bench, "mom", "vector", 20, warm=False)
    assert batched.to_dict() == reference.to_dict(), \
        batched.diff(reference)


def test_decode_memo_invalidated_when_program_grows():
    """Appending to a program after a run must not serve stale decode
    state: both models see the grown trace."""
    from repro.isa import ProgramBuilder, r
    from repro.timing import ideal_memsys, mom_processor

    builder = ProgramBuilder("grow")
    for i in range(20):
        builder.li(r(i % 8), i)
    program = builder.program
    first = simulate(program, mom_processor(), ideal_memsys())
    assert first.instructions == 20
    for i in range(20):
        builder.li(r(i % 8), i)
    grown_batched = simulate(program, mom_processor(), ideal_memsys())
    grown_reference = simulate(program, mom_processor(), ideal_memsys(),
                               model="reference")
    assert grown_batched.instructions == 40
    assert grown_batched.to_dict() == grown_reference.to_dict()


def test_engine_timing_model_override(tmp_path):
    """The engine runs the reference model via the RunSpec override and
    produces equal statistics under a distinct cache key."""
    engine = Engine(jobs=1, cache_dir=tmp_path)
    spec_batched = engine.spec("gsm_encode", "mom", "vector")
    spec_reference = engine.spec(
        "gsm_encode", "mom", "vector",
        overrides=(("timing_model", "reference"),))
    assert spec_batched.digest() != spec_reference.digest()
    batched = engine.run(spec_batched)
    reference = engine.run(spec_reference)
    assert batched.to_dict() == reference.to_dict()
    assert engine.stats.simulations == 2


def test_latency_sweep_point_bit_identical():
    """A non-default L2 latency (the fig10 axis) agrees as well."""
    reference, batched = _run_both("mpeg2_encode", "mom3d", "vector", 40)
    assert batched.to_dict() == reference.to_dict(), \
        batched.diff(reference)


# -- grid-axis pipeline ------------------------------------------------------

#: (coding, memsystems) trace groups of the paper grids — each is one
#: GridPipeline pass in grid mode.
_GRID_GROUPS = [(bench, coding, memsystems)
                for bench in benchmark_names()
                for coding, memsystems in _GRID_CODINGS]


@pytest.mark.parametrize("bench,coding,memsystems", _GRID_GROUPS)
@pytest.mark.parametrize("warm", (True, False), ids=("warm", "cold"))
def test_grid_pipeline_bit_identical(bench, coding, memsystems, warm):
    """One GridPipeline pass over a trace group == per-spec batched
    runs, for every paper grid point, warm and cold."""
    program = build_workload(bench, coding, 0).program
    configs = [build_configs(RunSpec(benchmark=bench, coding=coding,
                                     memsys=memsys))
               for memsys in memsystems]
    grid = GridPipeline(program, configs).run(warm=warm)
    for (proc, memsys_config), stats, memsys in zip(configs, grid,
                                                    memsystems):
        batched = simulate(program, proc, memsys_config, warm=warm,
                           model="batched")
        assert stats.to_dict() == batched.to_dict(), (
            f"{bench}/{coding}/{memsys} warm={warm}: "
            f"{stats.diff(batched)}")


@pytest.fixture(scope="module")
def paper_grid_baseline():
    """Per-spec batched results for the deduped fig3+fig9+table1 grid."""
    specs = paper_grids()
    return specs, {spec: execute_spec(spec).to_dict() for spec in specs}


def _assert_grid_matches(results, baseline):
    for spec, payload in baseline.items():
        assert results[spec].to_dict() == payload, spec.label()


@pytest.mark.parametrize("grid_mode", ("on", "off", "auto"))
def test_grid_modes_bit_identical_inline(paper_grid_baseline,
                                         grid_mode):
    specs, baseline = paper_grid_baseline
    engine = Engine(use_cache=False, backend="inline",
                    grid_mode=grid_mode)
    _assert_grid_matches(engine.run_many(specs), baseline)
    if grid_mode != "off":
        assert engine.stats.grid_groups > 0


@pytest.mark.parametrize("grid_mode", ("on", "off", "auto"))
def test_grid_modes_bit_identical_process(paper_grid_baseline,
                                          grid_mode):
    specs, baseline = paper_grid_baseline
    engine = Engine(use_cache=False, backend="process", jobs=2,
                    grid_mode=grid_mode)
    _assert_grid_matches(engine.run_many(specs, jobs=2), baseline)


@pytest.mark.parametrize("grid_mode", ("on", "off", "auto"))
def test_grid_modes_bit_identical_remote(paper_grid_baseline,
                                         grid_mode):
    """Remote execution: shards keep trace groups together and the
    workers' own engines run them in the requested grid mode."""
    specs, baseline = paper_grid_baseline
    backend = RemoteBackend(lease_ttl=10.0, wait_timeout=120.0)
    engine = Engine(use_cache=False, backend=backend,
                    grid_mode=grid_mode)
    with background_server(engine, window=0.01) as server:
        worker = ServiceWorker(
            server.url, Engine(use_cache=False, grid_mode=grid_mode),
            worker_id="grid-w0", poll_interval=0.02)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            _assert_grid_matches(engine.run_many(specs, jobs=3),
                                 baseline)
        finally:
            worker.stop()
            thread.join(timeout=30)


def _outcome_counts(program, proc, memsys):
    """Run both models; return (fast commits, fallbacks, identical)."""
    from repro.timing.batched import BatchedPipeline

    counts = {"committed": 0, "fallback": 0}
    original = BatchedPipeline._run_span_fast

    def counting(self, decoded, lo):
        committed = original(self, decoded, lo)
        counts["committed" if committed else "fallback"] += 1
        return committed

    BatchedPipeline._run_span_fast = counting
    try:
        batched = simulate(program, proc, memsys, model="batched")
    finally:
        BatchedPipeline._run_span_fast = original
    reference = simulate(program, proc, memsys, model="reference")
    return counts, batched.to_dict() == reference.to_dict()


def test_vectorized_span_path_commits_and_matches():
    """A long hazard-free stream takes the numpy span path (not just
    the scalar fallback) and still matches the oracle exactly."""
    from repro.isa import ProgramBuilder, r
    from repro.timing import ideal_memsys, mom_processor

    builder = ProgramBuilder("independent")
    for i in range(200):
        builder.li(r(i % 16), i)
    counts, identical = _outcome_counts(
        builder.program, mom_processor(), ideal_memsys())
    assert counts["committed"] > 0
    assert identical


def test_vectorized_span_gate_fallback_matches():
    """Slow vector loads push retirement far ahead of fetch, so the
    window gates bind inside later spans: the fast path must refuse
    and the scalar replay must still match the oracle."""
    from repro.isa import ProgramBuilder, r, v
    from repro.timing import mom_processor, vector_memsys

    builder = ProgramBuilder("gated")
    builder.setvl(16)
    for i in range(4):
        builder.vld(v(i), ea=0x1000 + 4096 * i, stride=720)
    for i in range(300):
        builder.li(r(i % 16), i)
    counts, identical = _outcome_counts(
        builder.program, mom_processor(), vector_memsys())
    assert counts["fallback"] > 0
    assert identical
