"""Trace save/replay and report-generation tests."""

import numpy as np

from repro.cli import main
from repro.harness.traceio import export_workload, load_trace, save_trace
from repro.timing import mom3d_processor, simulate, vector_memsys
from repro.workloads import get_benchmark


def test_trace_roundtrip_preserves_timing(tmp_path):
    """A replayed trace must time identically to the original."""
    workload = get_benchmark("gsm_encode").build("mom3d")
    path = tmp_path / "gsm.trace"
    save_trace(workload.program, path)
    replayed = load_trace(path)
    assert replayed.name == workload.program.name
    assert len(replayed) == len(workload.program)
    original = simulate(workload.program, mom3d_processor(),
                        vector_memsys())
    again = simulate(replayed, mom3d_processor(), vector_memsys())
    assert again.cycles == original.cycles
    assert again.l2_activity == original.l2_activity


def test_trace_roundtrip_preserves_semantics(tmp_path):
    """A replayed trace executes to the same memory contents."""
    workload = get_benchmark("mpeg2_decode").build("mom")
    path = tmp_path / "m2d.trace"
    save_trace(workload.program, path)
    replayed = load_trace(path)

    from repro.vm import Executor, FlatMemory
    mem_a = FlatMemory(workload.memory.size)
    mem_a.data[:] = workload.memory.data
    mem_b = FlatMemory(workload.memory.size)
    mem_b.data[:] = workload.memory.data
    Executor(mem_a).run(workload.program)
    Executor(mem_b).run(replayed)
    assert np.array_equal(mem_a.data, mem_b.data)


def test_export_workload(tmp_path):
    path = tmp_path / "w.trace"
    nbytes = export_workload("gsm_encode", "mom", path)
    assert path.stat().st_size == nbytes > 1000


def test_cli_trace_and_replay(tmp_path, capsys):
    path = tmp_path / "t.trace"
    assert main(["trace", "gsm_encode", "mom3d", "-o", str(path)]) == 0
    assert main(["replay", str(path), "--coding", "mom3d"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out


def test_cli_report(tmp_path, capsys):
    path = tmp_path / "results.md"
    assert main(["report", "-o", str(path)]) == 0
    text = path.read_text()
    assert "## fig9" in text
    assert "## table3" in text
    assert "2826240" in text
    # markdown tables present
    assert text.count("|---") >= 8
