"""Trace save/replay and report-generation tests."""

import numpy as np

from repro.cli import main
from repro.harness.traceio import export_workload, load_trace, save_trace
from repro.timing import mom3d_processor, simulate, vector_memsys
from repro.workloads import get_benchmark


def test_trace_roundtrip_preserves_timing(tmp_path):
    """A replayed trace must time identically to the original."""
    workload = get_benchmark("gsm_encode").build("mom3d")
    path = tmp_path / "gsm.trace"
    save_trace(workload.program, path)
    replayed = load_trace(path)
    assert replayed.name == workload.program.name
    assert len(replayed) == len(workload.program)
    original = simulate(workload.program, mom3d_processor(),
                        vector_memsys())
    again = simulate(replayed, mom3d_processor(), vector_memsys())
    assert again.cycles == original.cycles
    assert again.l2_activity == original.l2_activity


def test_trace_roundtrip_preserves_semantics(tmp_path):
    """A replayed trace executes to the same memory contents."""
    workload = get_benchmark("mpeg2_decode").build("mom")
    path = tmp_path / "m2d.trace"
    save_trace(workload.program, path)
    replayed = load_trace(path)

    from repro.vm import Executor, FlatMemory
    mem_a = FlatMemory(workload.memory.size)
    mem_a.data[:] = workload.memory.data
    mem_b = FlatMemory(workload.memory.size)
    mem_b.data[:] = workload.memory.data
    Executor(mem_a).run(workload.program)
    Executor(mem_b).run(replayed)
    assert np.array_equal(mem_a.data, mem_b.data)


def test_export_workload(tmp_path):
    path = tmp_path / "w.trace"
    nbytes = export_workload("gsm_encode", "mom", path)
    assert path.stat().st_size == nbytes > 1000


def test_cli_trace_and_replay(tmp_path, capsys):
    path = tmp_path / "t.trace"
    assert main(["trace", "gsm_encode", "mom3d", "-o", str(path)]) == 0
    assert main(["replay", str(path), "--coding", "mom3d"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out


def test_cli_replay_routes_through_engine(tmp_path, capsys,
                                          monkeypatch):
    """Replays resolve through the engine: the first run simulates and
    stores, a rerun is a pure disk hit (content-addressed by trace)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    path = tmp_path / "t.trace"
    assert main(["trace", "gsm_encode", "mom3d", "-o", str(path)]) == 0
    capsys.readouterr()
    assert main(["replay", str(path), "--coding", "mom3d"]) == 0
    first = capsys.readouterr()
    assert "simulations=1" in first.err and "stores=1" in first.err

    # same bytes from a different path: still a cache hit
    copy = tmp_path / "copy.trace"
    copy.write_bytes(path.read_bytes())
    assert main(["replay", str(copy), "--coding", "mom3d"]) == 0
    second = capsys.readouterr()
    assert "simulations=0" in second.err and "disk-hits=1" in second.err
    assert first.out == second.out

    # --seed is irrelevant to a fixed trace: still the same entry
    assert main(["replay", str(path), "--coding", "mom3d",
                 "--seed", "7"]) == 0
    assert "simulations=0" in capsys.readouterr().err


def test_cli_replay_honors_set_override_axes(tmp_path, capsys):
    path = tmp_path / "t.trace"
    assert main(["trace", "gsm_encode", "mom3d", "-o", str(path)]) == 0
    assert main(["replay", str(path), "--coding", "mom3d", "--no-cache",
                 "--set", "l2_line=64,128"]) == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines() if "l2_line=" in line]
    assert len(rows) == 2
    assert any("l2_line=64" in row for row in rows)


def test_trace_paths_ship_to_pool_workers(tmp_path, monkeypatch):
    """Pool workers re-register the parent's trace paths explicitly,
    so replays parallelize under spawn (no fork-inherited state)."""
    from repro.engine import RunSpec, register_trace, simulate_many
    from repro.engine import parallel
    from repro.engine.backends.process import _pool_worker

    path = tmp_path / "t.trace"
    export_workload("gsm_encode", "mom", path)
    benchmark = register_trace(path)
    specs = [RunSpec(benchmark, "mom", "vector", lat)
             for lat in (20, 40)]
    shipped = parallel.trace_paths_for(specs)
    assert shipped == ((benchmark.split(":", 1)[1], str(path)),)

    # simulate a spawn-fresh worker: empty registry, paths passed in
    monkeypatch.setattr(parallel, "_TRACE_PATHS", {})
    monkeypatch.setattr(parallel, "_WORKLOADS", type(
        parallel._WORKLOADS)())
    payloads = _pool_worker(tuple(specs), shipped)
    assert len(payloads) == 2 and payloads[0]["cycles"] > 0

    # and the end-to-end parallel path agrees with serial execution
    parallel_results = simulate_many(specs, jobs=2)
    serial_results = simulate_many(specs, jobs=1)
    for spec in specs:
        assert parallel_results[spec].to_dict() == \
            serial_results[spec].to_dict()


def test_register_trace_is_content_addressed(tmp_path):
    from repro.engine import register_trace

    path = tmp_path / "t.trace"
    export_workload("gsm_encode", "mom", path)
    copy = tmp_path / "elsewhere.trace"
    copy.write_bytes(path.read_bytes())
    assert register_trace(path) == register_trace(copy)

    mutated = bytearray(path.read_bytes())
    mutated[-1] ^= 0xFF
    changed = tmp_path / "changed.trace"
    changed.write_bytes(bytes(mutated))
    assert register_trace(changed) != register_trace(path)


def test_mutated_trace_file_fails_instead_of_poisoning_cache(
        tmp_path, monkeypatch):
    """A trace file rewritten after registration must not simulate
    under the stale content digest."""
    import pytest

    from repro.engine import RunSpec, execute_spec, register_trace
    from repro.engine import parallel
    from repro.errors import ConfigError

    # fresh workload memo: the same trace bytes may have been built
    # (and memoized) by other tests in this session
    monkeypatch.setattr(parallel, "_WORKLOADS",
                        type(parallel._WORKLOADS)())
    path = tmp_path / "t.trace"
    export_workload("gsm_encode", "mom", path)
    benchmark = register_trace(path)
    export_workload("gsm_encode", "mmx", path)  # overwrite in place
    with pytest.raises(ConfigError, match="changed since registration"):
        execute_spec(RunSpec(benchmark, "mom", "ideal"))


def test_cli_report(tmp_path, capsys):
    path = tmp_path / "results.md"
    assert main(["report", "-o", str(path)]) == 0
    text = path.read_text()
    assert "## fig9" in text
    assert "## table3" in text
    assert "2826240" in text
    # markdown tables present
    assert text.count("|---") >= 8
