"""Unit + property tests for the pipeline's structural resources."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.resources import FuPool, InFlightLimiter, SlotPool


# --- SlotPool ----------------------------------------------------------------


def test_slotpool_width_one_serializes():
    pool = SlotPool(1)
    assert [pool.claim(0) for _ in range(4)] == [0, 1, 2, 3]


def test_slotpool_width_n_packs():
    pool = SlotPool(3)
    cycles = [pool.claim(0) for _ in range(7)]
    assert cycles == [0, 0, 0, 1, 1, 1, 2]


def test_slotpool_respects_earliest():
    pool = SlotPool(2)
    assert pool.claim(10) == 10
    assert pool.claim(5) == 5  # earlier cycle still has slots


@given(st.lists(st.integers(0, 50), min_size=1, max_size=100),
       st.integers(1, 8))
@settings(max_examples=40)
def test_slotpool_never_exceeds_width(earliest_list, width):
    pool = SlotPool(width)
    claims = [pool.claim(e) for e in earliest_list]
    for cycle in set(claims):
        assert claims.count(cycle) <= width
    for earliest, cycle in zip(earliest_list, claims):
        assert cycle >= earliest


# --- FuPool -----------------------------------------------------------------


def test_fupool_parallel_units():
    pool = FuPool(2)
    assert pool.claim(0, occupancy=4) == 0
    assert pool.claim(0, occupancy=4) == 0  # second unit
    assert pool.claim(0, occupancy=4) == 4  # first unit free again


def test_fupool_occupancy_blocks():
    pool = FuPool(1)
    assert pool.claim(0, occupancy=3) == 0
    assert pool.claim(1, occupancy=1) == 3


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 4)),
                min_size=1, max_size=60), st.integers(1, 4))
@settings(max_examples=40)
def test_fupool_no_overlap_per_unit(requests, units):
    pool = FuPool(units)
    total_busy = 0
    last = 0
    for ready, occ in requests:
        start = pool.claim(ready, occ)
        assert start >= ready
        total_busy += occ
        last = max(last, start + occ)
    # conservation: units cannot do more work than cycles x units
    assert total_busy <= last * units


# --- InFlightLimiter ------------------------------------------------------------


def test_limiter_admits_up_to_capacity():
    limiter = InFlightLimiter(2)
    assert limiter.admit(0) == 0
    limiter.record_exit(10)
    assert limiter.admit(0) == 0
    limiter.record_exit(20)
    # third item must wait for the first exit
    assert limiter.admit(0) == 10
    limiter.record_exit(30)
    assert limiter.admit(0) == 20


def test_limiter_large_capacity_never_blocks():
    limiter = InFlightLimiter(1000)
    for i in range(100):
        assert limiter.admit(i) == i
        limiter.record_exit(i + 5)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=80),
       st.integers(1, 6))
@settings(max_examples=40)
def test_limiter_monotone_exits_bound_entries(deltas, capacity):
    """With monotone exits, entry k waits for exit k-capacity."""
    limiter = InFlightLimiter(capacity)
    exits = []
    clock = 0
    for delta in deltas:
        entry = limiter.admit(clock)
        if len(exits) >= capacity:
            assert entry >= exits[len(exits) - capacity]
        clock = max(clock, entry)
        exit_cycle = clock + 1 + delta
        exits.append(exit_cycle)
        limiter.record_exit(exit_cycle)
        clock += 1
