"""Unit + property tests for the pipeline's structural resources."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.resources import (
    FuPool,
    InFlightLimiter,
    PackedSlots,
    SlotPool,
)


# --- SlotPool ----------------------------------------------------------------


def test_slotpool_width_one_serializes():
    pool = SlotPool(1)
    assert [pool.claim(0) for _ in range(4)] == [0, 1, 2, 3]


def test_slotpool_width_n_packs():
    pool = SlotPool(3)
    cycles = [pool.claim(0) for _ in range(7)]
    assert cycles == [0, 0, 0, 1, 1, 1, 2]


def test_slotpool_respects_earliest():
    pool = SlotPool(2)
    assert pool.claim(10) == 10
    assert pool.claim(5) == 5  # earlier cycle still has slots


@given(st.lists(st.integers(0, 50), min_size=1, max_size=100),
       st.integers(1, 8))
@settings(max_examples=40)
def test_slotpool_never_exceeds_width(earliest_list, width):
    pool = SlotPool(width)
    claims = [pool.claim(e) for e in earliest_list]
    for cycle in set(claims):
        assert claims.count(cycle) <= width
    for earliest, cycle in zip(earliest_list, claims):
        assert cycle >= earliest


# --- PackedSlots ------------------------------------------------------------


@given(st.lists(st.integers(0, 6), min_size=1, max_size=80),
       st.integers(1, 8))
@settings(max_examples=60)
def test_packed_slots_claim_matches_slotpool_on_monotone_streams(
        deltas, width):
    """For non-decreasing earliest floors (fetch/retire pattern), the
    two-integer pool is claim-for-claim identical to the dict pool."""
    packed, pool = PackedSlots(width), SlotPool(width)
    earliest = 0
    for delta in deltas:
        assert packed.claim(earliest) == pool.claim(earliest)
        earliest = max(earliest + delta - 3, packed.cycle)


@given(st.integers(1, 10), st.integers(1, 40), st.integers(1, 8),
       st.integers(0, 30))
@settings(max_examples=60)
def test_packed_slots_peek_packed_matches_sequential(
        warmup, count, width, earliest_gap):
    """peek/commit_packed equal seeded back-to-back sequential claims."""
    packed = PackedSlots(width)
    cycle = 0
    for _ in range(warmup):
        cycle = packed.claim(cycle)
    # oracle with the packed pool's exact usage state
    oracle = SlotPool(width)
    oracle._used[packed.cycle] = packed.used
    earliest = packed.cycle + earliest_gap
    expected = []
    floor = earliest
    for _ in range(count):
        floor = oracle.claim(floor)
        expected.append(floor)
    got = packed.peek_packed(earliest, count)
    assert got.tolist() == expected
    packed.commit_packed(earliest, count)
    # state equivalence: the next claim agrees with the oracle's
    assert packed.claim(expected[-1]) == oracle.claim(expected[-1])


@given(st.lists(st.integers(0, 5), min_size=1, max_size=60),
       st.integers(1, 8), st.integers(1, 8))
@settings(max_examples=60)
def test_packed_slots_claim_monotone_matches_sequential(deltas, width,
                                                        preused):
    """The closed-form retire packing equals per-claim claims."""
    packed = PackedSlots(width)
    packed.cycle, packed.used = 5, min(preused, width)
    oracle = SlotPool(width)
    oracle._used[5] = packed.used
    bounds = np.maximum.accumulate(
        5 + np.cumsum(np.array(deltas, dtype=np.int64) - 2).clip(0))
    expected = [oracle.claim(bound) for bound in bounds.tolist()]
    got = packed.claim_monotone(bounds)
    assert got.tolist() == expected
    assert packed.cycle == expected[-1]
    assert packed.claim(expected[-1]) == oracle.claim(expected[-1])


# --- FuPool -----------------------------------------------------------------


def test_fupool_parallel_units():
    pool = FuPool(2)
    assert pool.claim(0, occupancy=4) == 0
    assert pool.claim(0, occupancy=4) == 0  # second unit
    assert pool.claim(0, occupancy=4) == 4  # first unit free again


def test_fupool_occupancy_blocks():
    pool = FuPool(1)
    assert pool.claim(0, occupancy=3) == 0
    assert pool.claim(1, occupancy=1) == 3


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 4)),
                min_size=1, max_size=60), st.integers(1, 4))
@settings(max_examples=40)
def test_fupool_no_overlap_per_unit(requests, units):
    pool = FuPool(units)
    total_busy = 0
    last = 0
    for ready, occ in requests:
        start = pool.claim(ready, occ)
        assert start >= ready
        total_busy += occ
        last = max(last, start + occ)
    # conservation: units cannot do more work than cycles x units
    assert total_busy <= last * units


# --- InFlightLimiter ------------------------------------------------------------


def test_limiter_admits_up_to_capacity():
    limiter = InFlightLimiter(2)
    assert limiter.admit(0) == 0
    limiter.record_exit(10)
    assert limiter.admit(0) == 0
    limiter.record_exit(20)
    # third item must wait for the first exit
    assert limiter.admit(0) == 10
    limiter.record_exit(30)
    assert limiter.admit(0) == 20


def test_limiter_large_capacity_never_blocks():
    limiter = InFlightLimiter(1000)
    for i in range(100):
        assert limiter.admit(i) == i
        limiter.record_exit(i + 5)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=80),
       st.integers(1, 6))
@settings(max_examples=40)
def test_limiter_monotone_exits_bound_entries(deltas, capacity):
    """With monotone exits, entry k waits for exit k-capacity."""
    limiter = InFlightLimiter(capacity)
    exits = []
    clock = 0
    for delta in deltas:
        entry = limiter.admit(clock)
        if len(exits) >= capacity:
            assert entry >= exits[len(exits) - capacity]
        clock = max(clock, entry)
        exit_cycle = clock + 1 + delta
        exits.append(exit_cycle)
        limiter.record_exit(exit_cycle)
        clock += 1
