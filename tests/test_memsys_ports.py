"""Tests for the vector-port designs: grouping, conflicts, accounting."""

import pytest

from repro.isa import Instruction, Opcode, d3, v
from repro.memsys import (
    CacheHierarchy,
    HierarchyConfig,
    IdealPort,
    L1Port,
    MemRequest,
    MultiBankedPort,
    VectorCachePort,
    request_for,
)


def hierarchy(l2_latency=20):
    return CacheHierarchy(HierarchyConfig(l2_latency=l2_latency))


def vld(ea, stride, vl):
    return Instruction(op=Opcode.VLD, dsts=(v(0),), ea=ea, stride=stride,
                       vl=vl)


def dvload(ea, stride, vl, wwords):
    return Instruction(op=Opcode.DVLOAD3, dsts=(d3(0),), ea=ea,
                       stride=stride, vl=vl, wwords=wwords)


# --- request lowering -------------------------------------------------------


def test_request_for_vld():
    req = request_for(vld(0x1000, 720, 8))
    assert len(req.refs) == 8
    assert req.refs[1] == (0x1000 + 720, 8)
    assert req.useful_words == 8
    assert not req.is_write and not req.line_mode


def test_request_for_dvload3():
    req = request_for(dvload(0x2000, 720, 8, wwords=3))
    assert len(req.refs) == 8
    assert req.refs[2] == (0x2000 + 1440, 24)
    assert req.useful_words == 24
    assert req.line_mode


def test_request_for_store():
    inst = Instruction(op=Opcode.VST, srcs=(v(1),), ea=0x100, stride=8, vl=4)
    req = request_for(inst)
    assert req.is_write


# --- vector cache port ---------------------------------------------------------


def test_vector_cache_dense_grouping():
    """Unit-stride: 4 words per access (256-bit port)."""
    port = VectorCachePort(hierarchy())
    sched = port.schedule(request_for(vld(0x1000, 8, 16)), earliest=0)
    assert sched.port_accesses == 4  # 16 words / 4 per access
    assert sched.words == 16


def test_vector_cache_sparse_one_word_per_access():
    """Strided rows (image width apart): one element per access."""
    port = VectorCachePort(hierarchy())
    sched = port.schedule(request_for(vld(0x1000, 720, 8)), earliest=0)
    assert sched.port_accesses == 8
    assert sched.words == 8


def test_vector_cache_effective_bandwidth():
    port = VectorCachePort(hierarchy())
    port.schedule(request_for(vld(0x1000, 8, 16)), earliest=0)
    assert port.stats.effective_bandwidth == pytest.approx(4.0)


def test_vector_cache_line_mode_whole_line_per_access():
    port = VectorCachePort(hierarchy())
    # 8 elements x 16 words, each element 128-byte aligned: 1 access each
    sched = port.schedule(
        request_for(dvload(0x2000, 128, 8, wwords=16)), earliest=0)
    assert sched.port_accesses == 8
    assert sched.words == 128  # 8 elements x 16 words into the 3D RF
    assert sched.words / sched.port_accesses == 16.0


def test_vector_cache_line_mode_split_element():
    port = VectorCachePort(hierarchy())
    # element starts mid-line and spans two lines -> 2 accesses
    sched = port.schedule(
        request_for(dvload(0x2000 + 64, 256, 1, wwords=16)), earliest=0)
    assert sched.port_accesses == 2


def test_vector_cache_port_serializes():
    port = VectorCachePort(hierarchy())
    s1 = port.schedule(request_for(vld(0x1000, 720, 8)), earliest=0)
    s2 = port.schedule(request_for(vld(0x8000, 720, 8)), earliest=0)
    assert s2.start >= s1.start + s1.busy_cycles


def test_vector_cache_miss_then_hit_latency():
    port = VectorCachePort(hierarchy())
    cold = port.schedule(request_for(vld(0x1000, 8, 4)), earliest=0)
    warm = port.schedule(request_for(vld(0x1000, 8, 4)), earliest=100)
    assert cold.misses >= 1
    assert warm.misses == 0
    assert (warm.complete - warm.start) < (cold.complete - cold.start)


# --- multi-banked port -------------------------------------------------------------


def test_multibank_conflict_free_pattern():
    """Stride-8 words hit banks round-robin: 4 refs/cycle."""
    port = MultiBankedPort(hierarchy(), n_ports=4, n_banks=8)
    sched = port.schedule(request_for(vld(0x1000, 8, 16)), earliest=0)
    assert sched.port_accesses == 4  # 16 refs / 4 ports
    assert sched.cache_accesses == 16  # every bank reference counted


def test_multibank_full_conflict_serializes():
    """Stride of n_banks words: every ref maps to the same bank."""
    port = MultiBankedPort(hierarchy(), n_ports=4, n_banks=8)
    sched = port.schedule(request_for(vld(0x1000, 64, 8)), earliest=0)
    assert sched.port_accesses == 8  # one ref per cycle


def test_multibank_half_conflict():
    """Stride of 4 words alternates between two banks: 2 refs/cycle."""
    port = MultiBankedPort(hierarchy(), n_ports=4, n_banks=8)
    sched = port.schedule(request_for(vld(0x1000, 32, 8)), earliest=0)
    assert sched.port_accesses == 4


def test_multibank_decomposes_line_mode():
    port = MultiBankedPort(hierarchy(), n_ports=4, n_banks=8)
    sched = port.schedule(request_for(dvload(0x1000, 128, 2, wwords=4)),
                          earliest=0)
    assert sched.cache_accesses == 8  # 2 elements x 4 words


# --- ideal port -------------------------------------------------------------------


def test_ideal_port_unbounded():
    port = IdealPort(hierarchy(l2_latency=1))
    s1 = port.schedule(request_for(vld(0x1000, 720, 16)), earliest=5)
    s2 = port.schedule(request_for(vld(0x9000, 720, 16)), earliest=5)
    assert s1.complete == 6 and s2.complete == 6


# --- L1 path ----------------------------------------------------------------------


def test_l1_port_hit_latency_one():
    h = hierarchy()
    port = L1Port(h, n_ports=4)
    req = MemRequest(refs=[(0x100, 8)], useful_words=1)
    cold = port.schedule(req, earliest=0)
    warm = port.schedule(MemRequest(refs=[(0x100, 8)], useful_words=1),
                         earliest=50)
    assert warm.complete - warm.start == 1
    assert cold.complete - cold.start > 1  # L1 miss went to L2


def test_l1_port_width_limits_throughput():
    h = hierarchy()
    port = L1Port(h, n_ports=2)
    # warm the line first
    port.schedule(MemRequest(refs=[(0x0, 8)], useful_words=1), 0)
    scheds = [port.schedule(MemRequest(refs=[(0x0, 8)], useful_words=1),
                            earliest=100) for _ in range(4)]
    starts = sorted(s.start for s in scheds)
    assert starts == [100, 100, 101, 101]


# --- batched entry points: requests_for / plans / schedule_batch ------------


def test_requests_for_aligns_with_program():
    from repro.isa import ProgramBuilder, r
    from repro.memsys.ports import requests_for

    b = ProgramBuilder()
    b.li(r(0), 1)
    b.setvl(8)
    b.vld(v(0), ea=0x1000, stride=720)
    b.ld(r(1), ea=0x2000)
    program = b.program
    requests = requests_for(program)
    assert len(requests) == len(program)
    assert requests[0] is None and requests[1] is None
    assert len(requests[2].refs) == 8
    assert requests[3].refs == [(0x2000, 8)]


@pytest.mark.parametrize("port_cls", [VectorCachePort, MultiBankedPort])
def test_planned_schedule_equals_unplanned(port_cls):
    """A request with its plan pre-attached schedules identically to
    the same request decomposed inside the port."""
    for inst in (vld(0x1000, 8, 16), vld(0x1003, 720, 7),
                 dvload(0x4000, 720, 8, 2)):
        if inst.op is Opcode.DVLOAD3 and port_cls is MultiBankedPort:
            continue
        plain_port = port_cls(hierarchy())
        planned_port = port_cls(hierarchy())
        plain = plain_port.schedule(request_for(inst), earliest=3)
        request = request_for(inst)
        request.plan = planned_port.plan_request(request)
        planned = planned_port.schedule(request, earliest=3)
        assert planned == plain
        assert vars(planned_port.stats) == vars(plain_port.stats)


def test_schedule_batch_matches_sequential_schedules():
    insts = [vld(0x1000, 8, 8), vld(0x8000, 720, 4), vld(0x1000, 8, 8)]
    one_by_one = VectorCachePort(hierarchy())
    batch = VectorCachePort(hierarchy())
    expected = [one_by_one.schedule(request_for(i), e)
                for i, e in zip(insts, (0, 2, 4))]
    got = batch.schedule_batch([request_for(i) for i in insts],
                               (0, 2, 4))
    assert got == expected


# --- coherence ---------------------------------------------------------------------


def test_exclusive_bit_coherence_event():
    h = hierarchy()
    # scalar touch claims the line for the L1 side
    h.scalar_access(0x1000, is_write=False)
    assert h.l2.is_scalar_owned(0x1000)
    port = VectorCachePort(h)
    port.schedule(request_for(vld(0x1000, 8, 4)), earliest=0)
    assert h.coherence_events == 1
    assert not h.l2.is_scalar_owned(0x1000)
    assert not h.l1.probe(0x1000)
