"""Chaos harness: FaultPlan semantics and the production seams.

The plan itself must be deterministic (same rules + seed -> same
firing sequence) or the chaos-smoke job could never assert anything;
the seam tests then drive each injection point through the *production*
recovery path it claims to exercise: the lease queue, the segment
store's torn-write recovery, the client transport, and the worker
loop's crash guard.
"""

import pytest

from repro.engine import Engine, RunSpec, WorkQueue
from repro.engine.store import SegmentStore
from repro.service import ServiceWorker, WorkLeaseGrant
from repro.service.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    NO_FAULTS,
)

BENCH = "gsm_encode"


def _digest(i: int) -> str:
    return f"{i:064x}"


# --- plan semantics ----------------------------------------------------------


def test_plan_parse_round_trip():
    text = ("worker.simulate:sigkill@2;store.write:torn@1,3;"
            "transport.complete:dup%0.5;"
            "transport.request:delay*0.05%0.3")
    plan = FaultPlan.parse(text, seed=7)
    again = FaultPlan.parse(plan.to_string(), seed=7)
    assert again.rules == plan.rules
    by_site = {rule.site: rule for rule in plan.rules}
    assert by_site["worker.simulate"].hits == (2,)
    assert by_site["store.write"].hits == (1, 3)
    assert by_site["transport.complete"].prob == 0.5
    assert by_site["transport.request"].arg == 0.05
    assert by_site["transport.request"].prob == 0.3


def test_hit_rules_fire_on_exact_hits():
    plan = FaultPlan.parse("store.write:torn@2")
    assert plan.fire("store.write") is None
    rule = plan.fire("store.write")
    assert rule is not None and rule.action == "torn"
    assert plan.fire("store.write") is None
    assert plan.counts() == {"store.write": 3}


def test_probability_rules_are_seed_deterministic():
    text = "transport.request:drop%0.5"
    plan_a = FaultPlan.parse(text, seed=11)
    plan_b = FaultPlan.parse(text, seed=11)
    plan_c = FaultPlan.parse(text, seed=12)
    fires_a = [plan_a.fire("transport.request") is not None
               for _ in range(64)]
    fires_b = [plan_b.fire("transport.request") is not None
               for _ in range(64)]
    fires_c = [plan_c.fire("transport.request") is not None
               for _ in range(64)]
    assert fires_a == fires_b  # same seed: identical chaos
    assert fires_c != fires_a  # different seed: different chaos
    assert any(fires_a) and not all(fires_a)


def test_sites_are_independent_under_one_seed():
    plan = FaultPlan.parse(
        "transport.lease:drop%0.5;transport.complete:drop%0.5", seed=3)
    lease = [plan.fire("transport.lease") is not None
             for _ in range(64)]
    complete = [plan.fire("transport.complete") is not None
                for _ in range(64)]
    assert lease != complete


def test_bad_rules_rejected():
    with pytest.raises(FaultSpecError, match="unknown fault site"):
        FaultPlan.parse("nonsense.site:drop@1")
    with pytest.raises(FaultSpecError, match="does not support"):
        FaultPlan.parse("store.write:dup@1")
    with pytest.raises(FaultSpecError, match="never fires"):
        FaultPlan.parse("store.write:torn")
    with pytest.raises(FaultSpecError, match="1-based"):
        FaultPlan.parse("store.write:torn@0")
    with pytest.raises(FaultSpecError, match="outside"):
        FaultPlan.parse("store.write:torn%1.5")
    with pytest.raises(FaultSpecError, match="expected site:action"):
        FaultPlan.parse("store.write.torn")


def test_firing_an_unknown_site_is_a_programming_error():
    assert NO_FAULTS.fire("store.write") is None  # known site: fine
    with pytest.raises(FaultSpecError, match="unknown fault site"):
        NO_FAULTS.fire("no.such.seam")


def test_env_plan_round_trip():
    plan = FaultPlan.from_env({"REPRO_FAULTS":
                               "worker.simulate:sigkill@1",
                               "REPRO_FAULTS_SEED": "9"})
    assert plan and plan.seed == 9
    assert not FaultPlan.from_env({})  # unset -> empty, falsy plan
    with pytest.raises(FaultSpecError, match="REPRO_FAULTS_SEED"):
        FaultPlan.from_env({"REPRO_FAULTS_SEED": "not-a-number"})


def test_every_documented_site_parses():
    for site, actions in FAULT_SITES.items():
        for action in actions:
            plan = FaultPlan.parse(f"{site}:{action}@1")
            assert plan.fire(site).action == action


# --- the lease seam ----------------------------------------------------------


def test_lease_grant_drop_pretends_idle():
    plan = FaultPlan.parse("lease.grant:drop@1")
    queue = WorkQueue(lease_ttl=10.0, fault_plan=plan)
    spec = RunSpec(BENCH, "mom", "ideal")
    queue.enqueue([(spec,)])
    assert queue.lease("w1") is None  # injected: queue plays idle
    lease = queue.lease("w1")  # next poll gets the shard
    assert lease is not None and lease.shard.specs == (spec,)


def test_lease_grant_expire_forces_the_ttl_race():
    now = [0.0]
    plan = FaultPlan.parse("lease.grant:expire@1")
    queue = WorkQueue(lease_ttl=10.0, clock=lambda: now[0],
                      fault_plan=plan)
    spec = RunSpec(BENCH, "mom", "ideal")
    (shard_id,) = queue.enqueue([(spec,)])
    doomed = queue.lease("w-doomed")
    assert doomed is not None
    # born expired: re-leasable immediately, no clock advance needed
    second = queue.lease("w-live")
    assert second is not None and second.shard.shard_id == shard_id
    assert second.lease_id != doomed.lease_id


# --- the store-write seam ----------------------------------------------------


def test_store_torn_write_is_recovered_on_reopen(tmp_path):
    plan = FaultPlan.parse("store.write:torn@1")
    store = SegmentStore(tmp_path, fault_plan=plan)
    with pytest.raises(InjectedFault):
        store.append_many([(_digest(1), {"v": 1})])
    assert store.get(_digest(1)) is None  # nothing admitted

    # reopen: recovery's tail scan stops at the torn frame and the
    # store works normally afterwards
    fresh = SegmentStore(tmp_path)
    assert fresh.get(_digest(1)) is None
    fresh.append_many([(_digest(1), {"v": 1})])
    assert fresh.get(_digest(1)) == {"v": 1}


def test_store_survives_its_own_torn_write(tmp_path):
    """The *same* store object keeps working after the injected tear
    (the abandoned segment is closed; appends claim a fresh one)."""
    plan = FaultPlan.parse("store.write:torn@1")
    store = SegmentStore(tmp_path, fault_plan=plan)
    with pytest.raises(InjectedFault):
        store.append_many([(_digest(1), {"v": 1})])
    written = store.append_many([(_digest(1), {"v": 1})])
    assert written == [_digest(1)]
    assert store.get(_digest(1)) == {"v": 1}
    # and the torn half-frame on disk does not confuse a reopen
    assert SegmentStore(tmp_path).get(_digest(1)) == {"v": 1}


def test_store_error_write_leaves_nothing(tmp_path):
    plan = FaultPlan.parse("store.write:error@1")
    store = SegmentStore(tmp_path, fault_plan=plan)
    with pytest.raises(InjectedFault):
        store.append_many([(_digest(2), {"v": 2})])
    assert SegmentStore(tmp_path).get(_digest(2)) is None


# --- the transport seam ------------------------------------------------------


def _recording_client(plan, **kwargs):
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:1", fault_plan=plan,
                           **kwargs)
    calls = []

    def send(method, path, payload=None):
        calls.append(path)
        return {"ok": len(calls)}

    client._send = send
    return client, calls


def test_transport_dup_sends_twice_returns_second_reply():
    plan = FaultPlan.parse("transport.request:dup@1")
    client, calls = _recording_client(plan)
    reply = client._request("GET", "/v1/health")
    assert calls == ["/v1/health", "/v1/health"]
    assert reply == {"ok": 2}  # the second (surviving) reply wins


def test_transport_drop_is_retried_within_budget():
    plan = FaultPlan.parse("transport.lease:drop@1")
    slept = []
    client, calls = _recording_client(plan, retry_budget=10.0,
                                      sleep=slept.append)
    reply = client._request("POST", "/v1/work/lease", {})
    assert reply == {"ok": 1}
    assert slept  # the drop cost one backoff pause
    assert calls == ["/v1/work/lease"]  # dropped pre-send, then sent


def test_transport_drop_without_budget_raises():
    plan = FaultPlan.parse("transport.complete:drop@1")
    client, _calls = _recording_client(plan)
    with pytest.raises(InjectedFault):
        client._request("POST", "/v1/work/complete", {})


def test_transport_sites_route_by_path():
    plan = FaultPlan.parse("transport.lease:drop@1")
    client, calls = _recording_client(plan)
    # only the lease path consults transport.lease
    assert client._request("GET", "/v1/health") == {"ok": 1}
    with pytest.raises(InjectedFault):
        client._request("POST", "/v1/work/lease", {})


# --- the worker-simulate seam ------------------------------------------------


class OneShardClient:
    """Grants exactly one lease, then reports an idle queue."""

    def __init__(self, grant):
        self.grants = [grant]
        self.completions = 0

    def lease_work(self, _worker_id, report=None):
        return self.grants.pop(0) if self.grants else None

    def complete_work(self, _worker_id, grant, results, **kwargs):
        self.completions += 1
        return {"accepted": True, "fresh": len(results), "duplicate": 0}


def test_worker_crash_fault_exercises_the_shard_guard():
    spec = RunSpec(BENCH, "mom", "ideal")
    grant = WorkLeaseGrant(lease_id="l1", shard_id="s1", ttl=10.0,
                           specs=(spec,), grid_mode="auto")
    plan = FaultPlan.parse("worker.simulate:crash@1")
    worker = ServiceWorker("http://127.0.0.1:1",
                           Engine(use_cache=False),
                           max_idle=0.2, poll_interval=0.01,
                           fault_plan=plan)
    client = OneShardClient(grant)
    worker.client = client
    stats = worker.run()  # must return, not raise
    assert stats.failed_shards == 1
    assert stats.completions == 0
    assert client.completions == 0
