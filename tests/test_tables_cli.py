"""Tests for the report tables and the command-line interface."""

import pytest

from repro.cli import main
from repro.harness.tables import Table


# --- Table -------------------------------------------------------------------


def test_table_render_alignment():
    table = Table(["name", "value"], title="T")
    table.add_row("a", 1)
    table.add_row("long-name", 2.5)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("---")
    assert len({len(line) for line in lines[1:3]}) == 1  # aligned


def test_table_float_formatting():
    table = Table(["x"])
    table.add_row(1.23456)
    assert "1.23" in table.render()
    assert "1.2345" not in table.render()


def test_table_column_and_cell():
    table = Table(["bench", "a", "b"])
    table.add_row("x", 1, 2)
    table.add_row("y", 3, 4)
    assert table.column("a") == [1, 3]
    assert table.cell("y", "b") == 4
    with pytest.raises(KeyError):
        table.cell("z", "b")
    with pytest.raises(ValueError):
        table.column("missing")


# --- CLI --------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "table3" in out
    assert "mpeg2_encode" in out


def test_cli_run_table3(capsys):
    assert main(["run", "table3"]) == 0
    out = capsys.readouterr().out
    assert "2826240" in out and "exact" in out


def test_cli_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 1
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_bench(capsys):
    assert main(["bench", "gsm_encode", "--coding", "mom3d"]) == 0
    out = capsys.readouterr().out
    assert "L2 activity" in out
    assert "gsm_encode" in out


def test_cli_bench_rejects_bad_name():
    with pytest.raises(SystemExit):
        main(["bench", "not_a_benchmark"])


def test_cli_bench_suite_records_and_diffs(tmp_path, capsys, monkeypatch):
    """``repro bench <suite>`` re-records BENCH_*.json and diffs it."""
    import json

    import repro.cli as cli

    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_toy.py").write_text(
        "import json\n"
        "from pathlib import Path\n"
        "BENCH_OUT = Path(__file__).resolve().parent.parent"
        " / 'BENCH_toy.json'\n"
        "def run_benchmark():\n"
        "    payload = {'speedup': 2.0, 'per_group': {'a': 1}}\n"
        "    BENCH_OUT.write_text(json.dumps(payload),"
        " encoding='utf-8')\n"
        "    return payload\n", encoding="utf-8")
    monkeypatch.setattr(cli, "_bench_dir", lambda: bench_dir)

    assert main(["bench", "toy"]) == 0
    out = capsys.readouterr().out
    assert "no previous record" in out

    assert main(["bench", "toy"]) == 0
    assert "unchanged" in capsys.readouterr().out

    artifact = tmp_path / "BENCH_toy.json"
    artifact.write_text(json.dumps({"speedup": 1.5,
                                    "per_group": {"a": 3, "b": 4}}),
                        encoding="utf-8")
    assert main(["bench", "toy"]) == 0
    out = capsys.readouterr().out
    assert "speedup: 1.5 -> 2.0" in out
    assert "per_group.a: 3 -> 1" in out
    assert "per_group.b: 4 -> (gone)" in out


def test_cli_sweep_timing_model_axis(capsys):
    """String-valued --set overrides (timing_model) sweep both models
    and report identical schedules."""
    assert main(["sweep", "-b", "gsm_encode", "-c", "mom",
                 "-m", "vector", "--set", "timing_model=reference,batched",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines() if "timing_model=" in line]
    assert len(rows) == 2
    # the two models' cycle/IPC/bandwidth columns must agree exactly
    assert rows[0].split()[1:] == rows[1].split()[1:]


def test_cli_sweep_rejects_unknown_timing_model(capsys):
    assert main(["sweep", "-b", "gsm_encode", "-c", "mom", "-m",
                 "vector", "--set", "timing_model=bogus",
                 "--no-cache"]) == 2
    assert "unknown timing model" in capsys.readouterr().err


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


# --- cache management --------------------------------------------------------


def test_cli_cache_ls_stat_gc(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["cache", "stat"]) == 0
    assert "empty" in capsys.readouterr().out

    # populate the active version, fake a superseded one
    assert main(["bench", "gsm_encode", "--coding", "mom",
                 "--memsys", "ideal"]) == 0
    capsys.readouterr()
    stale = tmp_path / "0123456789abcdef"
    stale.mkdir()
    (stale / "feed.json").write_text('{"stale": true}')

    assert main(["cache", "ls"]) == 0
    out = capsys.readouterr().out
    assert "(active)" in out
    assert "gsm_encode/mom/ideal" in out
    assert "0123456789abcdef" in out

    assert main(["cache", "stat"]) == 0
    out = capsys.readouterr().out
    assert "active" in out and "superseded" in out

    # --dry-run reports the same totals but touches nothing
    assert main(["cache", "gc", "--dry-run"]) == 0
    assert "would remove 1 records" in capsys.readouterr().out
    assert stale.exists()
    assert main(["cache", "ls", "--dry-run"]) == 2
    assert "--dry-run" in capsys.readouterr().err

    assert main(["cache", "gc"]) == 0
    assert "removed 1 records" in capsys.readouterr().out
    assert not stale.exists()

    # the active version survives gc: a rerun must not simulate
    assert main(["bench", "gsm_encode", "--coding", "mom",
                 "--memsys", "ideal"]) == 0
    assert "simulations=0" in capsys.readouterr().err


# --- service submit ----------------------------------------------------------


def test_cli_submit_against_live_service(capsys):
    from repro.engine import Engine
    from repro.service import background_server

    engine = Engine(use_cache=False)
    with background_server(engine) as server:
        assert main(["submit", "-b", "gsm_encode", "-c", "mom",
                     "-m", "ideal", "--url", server.url]) == 0
    captured = capsys.readouterr()
    assert "gsm_encode/mom/ideal" in captured.out
    assert "[service]" in captured.err
    assert "simulations=1" in captured.err


def test_cli_worker_rejects_remote_backend(capsys):
    assert main(["worker", "--backend", "remote"]) == 2
    assert "locally" in capsys.readouterr().err


def test_cli_worker_gives_up_when_idle(capsys):
    assert main(["worker", "--url", "http://127.0.0.1:1",
                 "--max-idle", "0.2", "--no-cache"]) == 0
    err = capsys.readouterr().err
    # the budget is spent in full: the first refusal waits out the
    # remaining 0.2s (backoff clamped to the budget), the second ends
    # the loop — two error polls, not one
    assert "[worker]" in err and "errors=2" in err


def test_cli_worker_fails_fast_without_work_queue(capsys):
    from repro.engine import Engine
    from repro.service import background_server

    with background_server(Engine(use_cache=False)) as server:
        assert main(["worker", "--url", server.url,
                     "--max-idle", "5", "--no-cache"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "repro serve --backend remote" in err


def test_cli_rejects_non_positive_jobs(capsys):
    with pytest.raises(SystemExit):
        main(["--jobs", "0", "list"])
    assert "positive" in capsys.readouterr().err


def test_cli_rejects_bad_backend_tuning(capsys):
    with pytest.raises(SystemExit):
        main(["--lease-ttl", "0", "list"])
    assert "positive" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["--work-port", "-1", "list"])
    assert "port" in capsys.readouterr().err


def test_cli_submit_unreachable_service(capsys):
    assert main(["submit", "-b", "gsm_encode", "-c", "mom",
                 "-m", "ideal", "--url",
                 "http://127.0.0.1:1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_submit_rejects_bad_url(capsys):
    assert main(["submit", "-b", "gsm_encode", "-c", "mom",
                 "-m", "ideal", "--url",
                 "https://127.0.0.1:9"]) == 1
    assert "error:" in capsys.readouterr().err
