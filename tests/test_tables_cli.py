"""Tests for the report tables and the command-line interface."""

import pytest

from repro.cli import main
from repro.harness.tables import Table


# --- Table -------------------------------------------------------------------


def test_table_render_alignment():
    table = Table(["name", "value"], title="T")
    table.add_row("a", 1)
    table.add_row("long-name", 2.5)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("---")
    assert len({len(line) for line in lines[1:3]}) == 1  # aligned


def test_table_float_formatting():
    table = Table(["x"])
    table.add_row(1.23456)
    assert "1.23" in table.render()
    assert "1.2345" not in table.render()


def test_table_column_and_cell():
    table = Table(["bench", "a", "b"])
    table.add_row("x", 1, 2)
    table.add_row("y", 3, 4)
    assert table.column("a") == [1, 3]
    assert table.cell("y", "b") == 4
    with pytest.raises(KeyError):
        table.cell("z", "b")
    with pytest.raises(ValueError):
        table.column("missing")


# --- CLI --------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "table3" in out
    assert "mpeg2_encode" in out


def test_cli_run_table3(capsys):
    assert main(["run", "table3"]) == 0
    out = capsys.readouterr().out
    assert "2826240" in out and "exact" in out


def test_cli_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 1
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_bench(capsys):
    assert main(["bench", "gsm_encode", "--coding", "mom3d"]) == 0
    out = capsys.readouterr().out
    assert "L2 activity" in out
    assert "gsm_encode" in out


def test_cli_bench_rejects_bad_name():
    with pytest.raises(SystemExit):
        main(["bench", "not_a_benchmark"])


def test_cli_sweep_timing_model_axis(capsys):
    """String-valued --set overrides (timing_model) sweep both models
    and report identical schedules."""
    assert main(["sweep", "-b", "gsm_encode", "-c", "mom",
                 "-m", "vector", "--set", "timing_model=reference,batched",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines() if "timing_model=" in line]
    assert len(rows) == 2
    # the two models' cycle/IPC/bandwidth columns must agree exactly
    assert rows[0].split()[1:] == rows[1].split()[1:]


def test_cli_sweep_rejects_unknown_timing_model(capsys):
    assert main(["sweep", "-b", "gsm_encode", "-c", "mom", "-m",
                 "vector", "--set", "timing_model=bogus",
                 "--no-cache"]) == 2
    assert "unknown timing model" in capsys.readouterr().err


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
