"""Warm-vs-cold simulation: the steady-state modeling choice (DESIGN §5)."""

import pytest

from repro.timing import (
    Pipeline,
    mom_processor,
    simulate,
    vector_memsys,
)
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def program():
    return get_benchmark("gsm_encode").build("mom").program


def test_cold_never_faster_than_warm(program):
    warm = simulate(program, mom_processor(), vector_memsys(), warm=True)
    cold = simulate(program, mom_processor(), vector_memsys(), warm=False)
    assert cold.cycles >= warm.cycles


def test_warm_run_has_high_hit_rate(program):
    warm = simulate(program, mom_processor(), vector_memsys(), warm=True)
    assert warm.l2_hit_rate > 0.95  # paper: 90-99%


def test_cold_run_pays_compulsory_misses(program):
    cold = simulate(program, mom_processor(), vector_memsys(), warm=False)
    assert cold.vector_port.misses > 0


def test_priming_resets_counters(program):
    pipeline = Pipeline(mom_processor(), vector_memsys())
    pipeline.prime_caches(program)
    assert pipeline.hierarchy.l2.stats.accesses == 0
    assert pipeline.hierarchy.mainmem.line_fetches == 0
    # contents survived the counter reset
    first_load = next(i for i in program if i.is_memory)
    assert pipeline.hierarchy.l2.probe(first_load.ea)


def test_activity_counts_independent_of_warmth(program):
    warm = simulate(program, mom_processor(), vector_memsys(), warm=True)
    cold = simulate(program, mom_processor(), vector_memsys(), warm=False)
    assert warm.l2_activity == cold.l2_activity
    assert warm.cache_words == cold.cache_words
