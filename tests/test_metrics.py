"""Metric registry units and the ``/v1/metrics`` scrape contract.

The registry (:mod:`repro.service.metrics`) is dependency-free, so the
unit half pins its arithmetic and Prometheus text rendering directly;
the integration half scrapes a live :func:`background_server` and
asserts the series the CI smoke job and any real Prometheus deployment
depend on: presence, typing, monotone counters across scrapes, and
cache occupancy surviving a warm restart.
"""

import pytest

from repro.engine import Engine, ResultCache, RunSpec
from repro.service import ServiceClient, ServiceError, background_server
from repro.service.metrics import (
    LATENCY_BUCKETS,
    Metrics,
    instrument_engine,
    instrument_work_queue,
)

BENCH = "gsm_encode"

SPECS = (RunSpec(BENCH, "mom", "ideal"),
         RunSpec(BENCH, "mom3d", "ideal"))


# --- registry units -----------------------------------------------------------


def test_counter_math_and_render():
    metrics = Metrics()
    counter = metrics.counter("repro_test_total", "Things counted.")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)
    text = metrics.render()
    assert "# HELP repro_test_total Things counted." in text
    assert "# TYPE repro_test_total counter" in text
    assert "repro_test_total 3.5" in text
    assert text.endswith("\n")


def test_gauge_set_inc_dec():
    gauge = Metrics().gauge("depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 6


def test_callback_instruments_read_at_scrape_time():
    state = {"n": 0}
    metrics = Metrics()
    counter = metrics.counter("live_total", fn=lambda: state["n"])
    state["n"] = 7
    assert counter.value == 7
    with pytest.raises(RuntimeError, match="callback-backed"):
        counter.inc()
    with pytest.raises(RuntimeError, match="callback-backed"):
        metrics.gauge("live_gauge", fn=lambda: 1).set(2)


def test_duplicate_name_rejected():
    metrics = Metrics()
    metrics.counter("twice_total")
    with pytest.raises(ValueError, match="already registered"):
        metrics.gauge("twice_total")
    assert "twice_total" in metrics
    assert "absent" not in metrics
    assert metrics.get("twice_total") is not None


def test_invalid_metric_names_rejected():
    metrics = Metrics()
    for bad in ("", "has space", "9starts_with_digit", "dash-ed"):
        with pytest.raises(ValueError):
            metrics.counter(bad)


def test_histogram_buckets_cumulative_and_quantile_ready():
    metrics = Metrics()
    hist = metrics.histogram("lat_seconds", "Latency.",
                             buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(56.05)
    # cumulative per-bucket counts, the histogram_quantile contract
    assert snap["buckets"] == {0.1: 1, 1.0: 3, 10.0: 4}
    text = metrics.render()
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 3' in text
    assert 'lat_seconds_bucket{le="10"} 4' in text
    assert 'lat_seconds_bucket{le="+Inf"} 5' in text
    assert "lat_seconds_count 5" in text
    with pytest.raises(ValueError, match="bucket"):
        metrics.histogram("empty_seconds", buckets=())
    with pytest.raises(ValueError, match="duplicate"):
        metrics.histogram("dup_seconds", buckets=(1.0, 1.0))


def test_default_latency_buckets_are_sorted():
    assert tuple(sorted(LATENCY_BUCKETS)) == LATENCY_BUCKETS


# --- engine / queue binders ---------------------------------------------------


def test_instrument_engine_series_and_hit_ratio(tmp_path):
    engine = Engine(cache_dir=tmp_path, backend="inline")
    metrics = Metrics()
    instrument_engine(metrics, engine)
    instrument_engine(metrics, engine)  # idempotent: no duplicate error
    hit_ratio = metrics.get("repro_engine_cache_hit_ratio")
    assert hit_ratio.value == 0.0  # nothing resolved yet
    engine.run_many(SPECS)
    assert metrics.get("repro_engine_simulations_total").value == 2
    engine.run_many(SPECS)  # all memo hits now
    assert hit_ratio.value == pytest.approx(0.5)
    assert metrics.get("repro_cache_enabled").value == 1
    assert metrics.get("repro_cache_entries").value == 2
    # segment-store footprint gauges track the default layout
    assert engine.cache.layout == "segment"
    assert metrics.get("repro_cache_store_bytes").value > 0
    assert metrics.get("repro_cache_segments").value >= 1


def test_store_gauges_zero_when_cache_disabled():
    metrics = Metrics()
    instrument_engine(metrics, Engine(use_cache=False, backend="inline"))
    assert metrics.get("repro_cache_store_bytes").value == 0
    assert metrics.get("repro_cache_segments").value == 0


def test_instrument_work_queue_series():
    from repro.engine import WorkQueue

    queue = WorkQueue(lease_ttl=30.0)
    metrics = Metrics()
    instrument_work_queue(metrics, queue)
    instrument_work_queue(metrics, queue)  # idempotent
    queue.enqueue([SPECS])
    assert metrics.get("repro_queue_pending_shards").value == 1
    assert metrics.get("repro_queue_enqueued_specs_total").value == 2
    lease = queue.lease("w1")
    assert lease is not None
    assert metrics.get("repro_queue_leased_shards").value == 1
    assert metrics.get("repro_queue_oldest_lease_age_seconds").value \
        >= 0.0


# --- incremental cache occupancy ----------------------------------------------


def test_cache_len_is_incremental(tmp_path):
    engine = Engine(cache_dir=tmp_path, backend="inline")
    results = engine.run_many(SPECS)
    cache = engine.cache
    assert len(cache) == 2
    # overwriting an existing digest does not inflate the count
    cache.put(SPECS[0], results[SPECS[0]])
    assert len(cache) == 2
    # a new view over the same directory scans the same entries
    other = ResultCache(tmp_path)
    assert len(other) == 2
    # ...and picks up this process's later writes via refresh_count
    spec = RunSpec(BENCH, "mmx", "ideal")
    cache.put(spec, results[SPECS[0]])
    assert len(cache) == 3
    assert len(other) == 2  # stale by design until refreshed
    assert other.refresh_count() == 3


# --- the /v1/metrics endpoint -------------------------------------------------


def _series(text: str) -> dict:
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out


CORE_SERIES = (
    "repro_engine_simulations_total",
    "repro_engine_memo_hits_total",
    "repro_engine_disk_hits_total",
    "repro_engine_cache_hit_ratio",
    "repro_cache_entries",
    "repro_scheduler_submitted_total",
    "repro_scheduler_batches_total",
    'repro_scheduler_job_latency_seconds_bucket{le="+Inf"}',
    "repro_scheduler_job_latency_seconds_sum",
    "repro_scheduler_batch_size_specs_count",
    "repro_fleet_workers",
    "repro_fleet_failed_shards",
    "repro_worker_shard_seconds_count",
)


def test_metrics_endpoint_scrape_and_warm_restart(tmp_path):
    engine = Engine(cache_dir=tmp_path, backend="inline")
    with background_server(engine, window=0.01) as server:
        client = ServiceClient(server.url)
        first = _series(client.metrics())
        for name in CORE_SERIES:
            assert name in first, f"missing series {name}"
        assert first["repro_engine_simulations_total"] == 0
        client.run_many(SPECS)
        second = _series(client.metrics())
        assert second["repro_engine_simulations_total"] == 2
        assert second["repro_scheduler_submitted_total"] == 2
        assert second["repro_cache_entries"] == 2
        latency_count = \
            second["repro_scheduler_job_latency_seconds_count"]
        assert latency_count == 2
        assert second["repro_scheduler_job_latency_seconds_sum"] > 0
        # counters are monotone across scrapes with work in between
        client.run_many(SPECS)
        third = _series(client.metrics())
        for name, value in second.items():
            if name.endswith("_total"):
                assert third[name] >= value, name
    # warm restart over the same cache directory: a fresh server sees
    # the stored entries and serves the grid without simulating
    warm_engine = Engine(cache_dir=tmp_path, backend="inline")
    with background_server(warm_engine, window=0.01) as server:
        client = ServiceClient(server.url)
        assert _series(client.metrics())["repro_cache_entries"] == 2
        client.run_many(SPECS)
        warm = _series(client.metrics())
        assert warm["repro_engine_simulations_total"] == 0
        assert warm["repro_engine_disk_hits_total"] == 2
        assert warm["repro_engine_cache_hit_ratio"] == 1.0


def test_metrics_content_type_and_method():
    engine = Engine(use_cache=False, backend="inline")
    with background_server(engine, window=0.01) as server:
        import http.client

        connection = http.client.HTTPConnection(server.host,
                                                server.port, timeout=10)
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            assert response.status == 200
            content_type = response.getheader("Content-Type")
            body = response.read().decode("utf-8")
        finally:
            connection.close()
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "# TYPE repro_engine_simulations_total counter" in body
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError):  # POST is not allowed
            client._request("POST", "/v1/metrics", {})


def test_background_server_plumbs_max_jobs():
    engine = Engine(use_cache=False, backend="inline")
    with background_server(engine, window=0.01,
                           max_jobs=0) as server:
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(SPECS)
        assert excinfo.value.status == 429
        assert excinfo.value.reply.code == "too-many-jobs"
