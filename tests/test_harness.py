"""Harness tests: runner caching and the qualitative shape of every
reproduced table/figure (the paper's orderings must hold)."""

import pytest

from repro.errors import ConfigError
from repro.harness import EXPERIMENTS, Runner, run_workload
from repro.harness.experiments import (
    fig3,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    table1,
    table3,
    table4,
)
from repro.workloads import benchmark_names


@pytest.fixture(scope="module")
def runner():
    return Runner(seed=0)


def test_runner_memoizes(runner):
    first = runner.run("gsm_encode", "mom", "vector")
    second = runner.run("gsm_encode", "mom", "vector")
    assert first is second


def test_runner_rejects_unknowns(runner):
    with pytest.raises(ConfigError):
        runner.run("gsm_encode", "avx512", "vector")
    with pytest.raises(ConfigError):
        runner.run("gsm_encode", "mom", "dram-only")


def test_run_workload_convenience():
    stats = run_workload("gsm_encode", isa="mom", memsys="vector")
    assert stats.cycles > 0


def test_fig3_realistic_always_slower_than_ideal(runner):
    result = fig3(runner)
    for column in ("multibank", "vector-cache"):
        for value in result.table.column(column):
            assert value >= 0.99


def test_fig3_mpeg2_encode_worst(runner):
    """Paper: mpeg2_encode suffers most from realistic memory."""
    result = fig3(runner)
    vc = result.table.column("vector-cache")
    assert result.table.cell("mpeg2_encode", "vector-cache") == max(vc)


def test_fig6_3d_raises_effective_bandwidth(runner):
    result = fig6(runner)
    for bench in ("mpeg2_encode", "gsm_encode", "jpeg_encode"):
        assert result.table.cell(bench, "vc+3D") > \
            result.table.cell(bench, "vector-cache")


def test_fig6_3d_beats_multibank_where_it_matters(runner):
    """Paper: with 3D the cheap vector cache beats the multi-banked
    design for the bandwidth-starved benchmarks."""
    result = fig6(runner)
    assert result.table.cell("mpeg2_encode", "vc+3D") > \
        result.table.cell("mpeg2_encode", "multibank")
    assert result.table.cell("gsm_encode", "vc+3D") > \
        result.table.cell("gsm_encode", "multibank")


def test_fig7_traffic_reduction_shape(runner):
    result = fig7(runner)
    # jpeg_decode: no 3D instructions -> zero reduction
    assert result.table.cell("jpeg_decode", "reduction %") == 0
    # overlap-heavy benchmarks see large reductions
    assert result.table.cell("gsm_encode", "reduction %") > 40
    assert result.table.cell("mpeg2_encode", "reduction %") > 30


def test_table1_dimensions(runner):
    result = table1(runner)
    # gsm: 4 x i16 lanes, 40-sample subframes -> VL 10 (paper: 4.0/10.0)
    assert result.table.cell("gsm_encode", "3d 1st") == pytest.approx(4.0)
    assert result.table.cell("gsm_encode", "3d 2nd") == pytest.approx(10.0)
    # every 3D-enabled benchmark has a positive 3rd dimension
    for bench in ("mpeg2_encode", "mpeg2_decode", "jpeg_encode",
                  "gsm_encode"):
        assert result.table.cell(bench, "3d 3rd") > 1.0
    assert result.table.cell("jpeg_decode", "3d 3rd") == 0.0


def test_table3_all_exact(runner):
    result = table3(runner)
    assert all(match == "exact" for match in result.table.column("match"))


def test_table4_activity_ordering(runner):
    """Paper Table 4 ordering: multibank >= vector >= vector+3D."""
    result = table4(runner)
    for bench in benchmark_names():
        mb = result.table.cell(bench, "multibank")
        vc = result.table.cell(bench, "vector")
        d3 = result.table.cell(bench, "vc+3D")
        assert mb >= vc >= d3, bench


def test_fig9_key_orderings(runner):
    result = fig9(runner)
    for bench in benchmark_names():
        vc = result.table.cell(bench, "mom-vc")
        v3 = result.table.cell(bench, "mom3d-vc")
        mmx = result.table.cell(bench, "mmx-ideal")
        # 3D never hurts, and MMX is issue-limited above MOM ideal
        assert v3 <= vc + 0.01, bench
        assert mmx > 1.2, bench
    # the paper's headline case: huge mpeg2_encode improvement
    gain = (result.table.cell("mpeg2_encode", "mom-vc")
            / result.table.cell("mpeg2_encode", "mom3d-vc"))
    assert gain > 1.15


def test_fig10_latency_robustness(runner):
    result = fig10(runner)
    rows = {(row[0], row[1]): row[2:] for row in result.table.rows}
    for bench in ("mpeg2_encode", "gsm_encode", "jpeg_encode",
                  "mpeg2_decode"):
        mom = rows[(bench, "mom")]
        m3d = rows[(bench, "mom3d")]
        # normalized to the 20-cycle run of the same coding
        assert mom[0] == pytest.approx(1.0)
        # latency degrades MOM at least as much as MOM+3D
        assert m3d[2] <= mom[2] + 0.02, bench


def test_fig11_power_orderings(runner):
    result = fig11(runner)
    for bench in benchmark_names():
        mb = result.table.cell(bench, "multibank W")
        d3 = result.table.cell(bench, "vc+3D W")
        rf = result.table.cell(bench, "3D RF share W")
        assert d3 <= mb, bench
        assert rf < 0.5, bench  # 3D RF power negligible


def test_all_experiments_render(runner):
    for exp_id, func in EXPERIMENTS.items():
        text = func(runner).render()
        assert exp_id in text
        assert len(text.splitlines()) >= 4
