"""Unit tests for the register architecture."""

import pytest

from repro.errors import IsaError
from repro.isa import RegClass, Register, VL, VS, acc, d3, r, v


def test_scalar_constructor():
    reg = r(5)
    assert reg.cls is RegClass.SCALAR
    assert reg.index == 5
    assert repr(reg) == "r5"


def test_vector_constructor():
    assert repr(v(15)) == "v15"
    assert v(0).cls is RegClass.VECTOR


def test_acc_and_3d_constructors():
    assert repr(acc(1)) == "acc1"
    assert repr(d3(0)) == "d0"


def test_control_registers():
    assert repr(VL) == "vl"
    assert repr(VS) == "vs"


@pytest.mark.parametrize("ctor,bad", [(r, 32), (v, 16), (acc, 2), (d3, 2)])
def test_out_of_range_indices_rejected(ctor, bad):
    with pytest.raises(IsaError):
        ctor(bad)


@pytest.mark.parametrize("ctor", [r, v, acc, d3])
def test_negative_indices_rejected(ctor):
    with pytest.raises(IsaError):
        ctor(-1)


def test_registers_hashable_and_equal():
    assert r(3) == Register(RegClass.SCALAR, 3)
    assert len({v(1), v(1), v(2)}) == 2
