"""Timing-model tests: dependences, widths, ports, latency monotonicity."""

import pytest

from repro.errors import ConfigError
from repro.isa import ElemType, Opcode, ProgramBuilder, acc, d3, r, v
from repro.timing import (
    Pipeline,
    ideal_memsys,
    mmx_processor,
    mom3d_processor,
    mom_processor,
    multibank_memsys,
    simulate,
    vector_memsys,
)


def run(program, proc=None, memsys=None):
    return simulate(program,
                    proc if proc is not None else mom_processor(),
                    memsys if memsys is not None else ideal_memsys())


def chain_program(n=32):
    """Serial dependency chain of adds."""
    b = ProgramBuilder("chain")
    b.li(r(1), 0)
    for _ in range(n):
        b.addi(r(1), r(1), 1)
    return b.program


def independent_program(n=32):
    b = ProgramBuilder("indep")
    for i in range(n):
        b.li(r(i % 16), i)
    return b.program


def test_dependent_chain_slower_than_independent():
    dep = run(chain_program(64))
    ind = run(independent_program(64))
    assert dep.cycles > ind.cycles


def test_fetch_width_bounds_throughput():
    # 64 independent instructions, 8-wide fetch: at least 8 cycles
    stats = run(independent_program(64))
    assert stats.cycles >= 64 / 8


def test_branch_bubble_costs_fetch_cycles():
    b1 = ProgramBuilder("nb")
    b2 = ProgramBuilder("wb")
    for i in range(32):
        b1.li(r(i % 8), i)
        b2.li(r(i % 8), i)
        if i % 4 == 3:
            b2.branch()
    assert run(b2.program).cycles > run(b1.program).cycles


def test_int_issue_width_limits():
    """More independent int work than issue slots serializes."""
    stats = run(independent_program(128))
    # 4-wide int issue: 128 instructions need >= 32 cycles
    assert stats.cycles >= 32


def test_mom_simd_occupancy():
    """VL=16 on a 4-lane unit holds it 4 cycles; chains serialize."""
    b = ProgramBuilder()
    b.setvl(16)
    for _ in range(8):
        b.simd(Opcode.PADDB, v(1), v(1), v(1), etype=ElemType.U8)
    dep16 = run(b.program).cycles
    b2 = ProgramBuilder()
    b2.setvl(4)
    for _ in range(8):
        b2.simd(Opcode.PADDB, v(1), v(1), v(1), etype=ElemType.U8)
    dep4 = run(b2.program).cycles
    assert dep16 > dep4


def test_vector_load_feeds_dependent_op():
    b = ProgramBuilder()
    b.setvl(8)
    b.vld(v(0), ea=0x1000, stride=128)
    b.simd(Opcode.PADDB, v(1), v(0), v(0), etype=ElemType.U8)
    stats = run(b.program, memsys=vector_memsys())
    # the add cannot complete before the load's L2 latency
    assert stats.cycles > 20


def test_ideal_memory_faster_than_realistic():
    b = ProgramBuilder()
    b.setvl(16)
    for i in range(16):
        b.vld(v(i % 8), ea=0x1000 + 4096 * i, stride=720)
    ideal = run(b.program, memsys=ideal_memsys()).cycles
    real = run(b.program, memsys=vector_memsys()).cycles
    assert real > ideal


def test_latency_monotonicity():
    """Raising L2 latency never speeds the program up (Fig. 10 axis)."""
    b = ProgramBuilder()
    b.setvl(8)
    for i in range(24):
        b.vld(v(i % 8), ea=0x1000 + 512 * i, stride=64)
        b.simd(Opcode.PADDB, v(8 + i % 4), v(i % 8), v(i % 8),
               etype=ElemType.U8)
    cycles = [run(b.program, memsys=vector_memsys(l2_latency=lat)).cycles
              for lat in (20, 40, 60)]
    assert cycles[0] <= cycles[1] <= cycles[2]


def test_sparse_load_occupies_port_longer_than_dense():
    def prog(stride):
        b = ProgramBuilder()
        b.setvl(16)
        for i in range(8):
            b.vld(v(i), ea=0x1000 + i * 4096, stride=stride)
        return b.program

    dense = run(prog(8), memsys=vector_memsys())
    sparse = run(prog(720), memsys=vector_memsys())
    assert sparse.vector_port.port_accesses > dense.vector_port.port_accesses
    assert sparse.cycles > dense.cycles


def test_dvload3_and_dvmov3_timing():
    b = ProgramBuilder()
    b.setvl(8)
    b.dvload3(d3(0), ea=0x1000, stride=720, wwords=2)
    for _ in range(5):
        b.dvmov3(v(1), d3(0), pstride=1)
    stats = run(b.program, proc=mom3d_processor(), memsys=vector_memsys())
    assert stats.rf3d_reads == 5
    assert stats.rf3d_words == 40
    assert stats.veclen.loads3d == 1
    assert stats.veclen.dim3 == 5.0


def test_dvload3_rejected_on_plain_mom():
    b = ProgramBuilder()
    b.setvl(4)
    b.dvload3(d3(0), ea=0x1000, stride=128, wwords=2)
    with pytest.raises(ConfigError):
        run(b.program, proc=mom_processor(), memsys=vector_memsys())


def test_dvload3_rejected_on_mmx():
    b = ProgramBuilder()
    b.setvl(4)
    b.dvload3(d3(0), ea=0x1000, stride=128, wwords=2)
    with pytest.raises(ConfigError):
        run(b.program, proc=mmx_processor(), memsys=vector_memsys())


def test_mmx_media_loads_use_l1():
    b = ProgramBuilder()
    for i in range(8):
        b.vld(v(i), ea=0x1000 + 8 * i, stride=8, vl=1)
    stats = run(b.program, proc=mmx_processor(), memsys=vector_memsys())
    assert stats.l1_port.requests == 8
    assert stats.vector_port.requests == 0


def test_mom_vector_loads_use_vector_port():
    b = ProgramBuilder()
    b.setvl(8)
    b.vld(v(0), ea=0x1000, stride=128)
    stats = run(b.program, proc=mom_processor(), memsys=vector_memsys())
    assert stats.vector_port.requests == 1


def test_store_to_load_forwarding_order():
    """A load after a store to the same line waits for the store."""
    def prog(store_ea):
        b = ProgramBuilder()
        b.setvl(4)
        # warm both lines so write-allocate doesn't skew the comparison
        b.vld(v(2), ea=0x1000, stride=8)
        b.vld(v(3), ea=0x8000, stride=8)
        b.vbcast64(v(0), 7)
        # long dependency chain delays the store's data
        for _ in range(12):
            b.simd(Opcode.PADDB, v(0), v(0), v(0), etype=ElemType.U8)
        b.vst(v(0), ea=store_ea, stride=8)
        b.vld(v(1), ea=0x1000, stride=8)
        b.simd(Opcode.PADDB, v(4), v(1), v(1), etype=ElemType.U8)
        return b.program

    with_conflict = run(prog(0x1000), memsys=vector_memsys()).cycles
    without = run(prog(0x8000), memsys=vector_memsys()).cycles
    assert with_conflict >= without


def test_accumulator_chain_serializes():
    b = ProgramBuilder()
    b.setvl(8)
    b.clracc(acc(0))
    for _ in range(6):
        b.vpsadacc(acc(0), v(0), v(1))
    serial = run(b.program).cycles

    b2 = ProgramBuilder()
    b2.setvl(8)
    b2.clracc(acc(0))
    b2.clracc(acc(1))
    for i in range(6):
        b2.vpsadacc(acc(i % 2), v(0), v(1))
    interleaved = run(b2.program).cycles
    assert serial > interleaved


def test_veclen_stats_dimensions():
    b = ProgramBuilder()
    b.setvl(8)
    b.vld(v(0), ea=0x1000, stride=720, etype=ElemType.U8)
    b.vld(v(1), ea=0x2000, stride=720, etype=ElemType.I16)
    stats = run(b.program, memsys=vector_memsys())
    assert stats.veclen.dim1 == pytest.approx(6.0)  # (8+4)/2
    assert stats.veclen.dim2 == pytest.approx(8.0)


def test_multibank_vs_vector_cache_on_dense():
    """Dense streams: both designs deliver multiple words/access."""
    b = ProgramBuilder()
    b.setvl(16)
    for i in range(16):
        b.vld(v(i % 16), ea=0x1000 + 128 * i, stride=8)
    vc = run(b.program, memsys=vector_memsys())
    mb = run(b.program, memsys=multibank_memsys())
    assert vc.effective_bandwidth == pytest.approx(4.0)
    assert mb.effective_bandwidth == pytest.approx(4.0)
    # Table 4: the multi-banked design burns one bank access per word
    assert mb.l2_activity > vc.l2_activity


def test_cycles_positive_and_retire_after_complete():
    stats = run(independent_program(8))
    assert stats.cycles > 0
    assert stats.instructions == 8


def test_scalar_store_straddling_l2_line_gates_load():
    """An 8-byte store whose end crosses an L2 line boundary must gate
    loads from the *second* line too (store-conflict ordering).

    Regression test: the model used to record only the first line for
    scalar LD/ST, so a straddling store never conflicted with traffic
    to the next line.  The paper-grid traces keep their LD/ST accesses
    8-byte aligned, so the fix does not move any table.
    """
    def prog(store_ea):
        b = ProgramBuilder()
        b.li(r(1), 7)
        # long dependency chain delays the store's address/data
        for _ in range(30):
            b.addi(r(1), r(1), 1)
        b.st(r(1), ea=store_ea)
        b.setvl(4)
        b.vld(v(0), ea=0x2000, stride=8)
        b.simd(Opcode.PADDB, v(1), v(0), v(0), etype=ElemType.U8)
        return b.program

    # 0x1ffc..0x2003 straddles into the load's line; 0x1ff0 does not
    gated = run(prog(0x2000 - 4), memsys=vector_memsys()).cycles
    clear = run(prog(0x2000 - 12), memsys=vector_memsys()).cycles
    assert gated > clear


def test_straddling_store_gates_identically_in_both_models():
    b = ProgramBuilder()
    b.li(r(1), 3)
    for _ in range(20):
        b.addi(r(1), r(1), 1)
    b.st(r(1), ea=0x2000 - 4)
    b.setvl(8)
    b.vld(v(0), ea=0x2000, stride=16)
    ref = simulate(b.program, mom_processor(), vector_memsys(),
                   model="reference")
    bat = simulate(b.program, mom_processor(), vector_memsys(),
                   model="batched")
    assert bat.to_dict() == ref.to_dict()
