"""Property tests for the modulo-scheduled trace analysis pass.

Random loop bodies are drawn to recycle a handful of architectural
registers — exactly the false WAR/WAW structure media kernels exhibit —
and the pass must (a) leave dataflow untouched under the functional
simulator, (b) verify the emission loop into an iteration signature
matching what was actually emitted, and (c) seed the grid fast-forward
with anchors that agree with its online periodicity detection.
"""

import copy

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import pipeline
from repro.isa import ElemType, Opcode, ProgramBuilder, r, v
from repro.isa.registers import RegClass
from repro.vm import Executor, FlatMemory

#: Registers the random bodies recycle (a tight window forces repeated
#: intra-body definitions, i.e. false WAW/WAR dependences); the
#: renamer may pull temps from the other 28 scalar / 13 vector names.
_SCALARS = 4
_VECTORS = 3
_VL = 4

_KINDS = ("li", "add", "addi", "mul", "slt", "cmov", "simd",
          "ld", "st", "vld", "vst")


@st.composite
def _bodies(draw, min_size=3, max_size=10):
    """One loop body: (kind, dst-ish, src-ish, small immediate) ops."""
    count = draw(st.integers(min_size, max_size))
    return [(draw(st.sampled_from(_KINDS)),
             draw(st.integers(0, _SCALARS - 1)),
             draw(st.integers(0, _SCALARS - 1)),
             draw(st.integers(0, 31)))
            for _ in range(count)]


def _emit_body(b, body, base_ea=0):
    for kind, a, c, e in body:
        if kind == "li":
            b.li(r(a), e + 1)
        elif kind == "add":
            b.add(r(a), r(c), r((a + c) % _SCALARS))
        elif kind == "addi":
            b.addi(r(a), r(c), e)
        elif kind == "mul":
            b.mul(r(a), r(c), r((a + 1) % _SCALARS))
        elif kind == "slt":
            b.slt(r(a), r(c), r((a + c) % _SCALARS))
        elif kind == "cmov":
            b.cmov(r(a), r(c), r((a + 2) % _SCALARS))
        elif kind == "simd":
            b.simd(Opcode.PADDW, v(a % _VECTORS), v(c % _VECTORS),
                   v((a + c) % _VECTORS), etype=ElemType.I16)
        elif kind == "ld":
            b.ld(r(a), ea=base_ea + 0x2000 + e * 8)
        elif kind == "st":
            b.st(r(a), ea=base_ea + 0x2000 + e * 8)
        elif kind == "vld":
            b.vld(v(a % _VECTORS), ea=base_ea + 0x3000 + e * 16,
                  stride=8, etype=ElemType.I16)
        else:
            b.vst(v(a % _VECTORS), ea=base_ea + 0x3000 + e * 16,
                  stride=8, etype=ElemType.I16)


def _build(body, trips, moving=False):
    """A marked emission loop over ``body``, with seeded live-ins."""
    b = ProgramBuilder("pipeline-prop")
    b.setvl(_VL)
    for i in range(_SCALARS):
        b.li(r(i), 7 * i + 1)
    with b.loop() as lp:
        for k in range(trips):
            lp.begin()
            _emit_body(b, body, base_ea=k * 4096 if moving else 0)
    return b.program


def _value_trace(program):
    """The dynamic dataflow of a run: per instruction, the values its
    destinations hold right after it executes, plus final memory.

    Renaming relabels *which* register carries a value, never the
    value itself, so two dataflow-equivalent programs produce the
    same trace slot for slot.  (Final machine state is deliberately
    not compared: a register that no later instruction reads is dead,
    and the renamer is allowed to park a temp value there.)
    """
    mem = FlatMemory(1 << 16)
    ex = Executor(mem)
    trace = []
    for inst in program.instructions:
        ex.step(inst)
        produced = []
        for dst in inst.dsts:
            if dst.cls is RegClass.SCALAR:
                produced.append(ex.state.read_scalar(dst))
            elif dst.cls is RegClass.VECTOR:
                produced.append(tuple(ex.state.read_vector(dst, _VL)))
            elif dst.cls is RegClass.ACC:
                produced.append(ex.state.read_acc(dst))
        trace.append((inst.op, tuple(produced)))
    return trace, mem


def _assert_same_dataflow(baseline, renamed):
    trace1, mem1 = _value_trace(baseline)
    trace2, mem2 = _value_trace(renamed)
    assert np.array_equal(mem1.data, mem2.data), \
        "renaming changed stored bytes"
    assert len(trace1) == len(trace2)
    for i, (a, b) in enumerate(zip(trace1, trace2)):
        assert a == b, (i, baseline.instructions[i],
                        renamed.instructions[i], a, b)


@given(body=_bodies(), trips=st.integers(2, 8), moving=st.booleans())
@settings(max_examples=40, deadline=None)
def test_rename_preserves_dataflow(body, trips, moving):
    """The renamed program computes the same values into the same
    architectural registers and memory as the original."""
    baseline = _build(body, trips, moving=moving)
    renamed = copy.deepcopy(baseline)
    pipeline.run(renamed)
    _assert_same_dataflow(baseline, renamed)


@given(body=_bodies(), trips=st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_verified_signature_matches_emission(body, trips):
    """verify_marks recovers exactly the loop that was emitted."""
    program = _build(body, trips)
    prelude = 1 + _SCALARS  # setvl + live-in seeds
    signatures = pipeline.verify_marks(program)
    assert len(signatures) == 1
    sig = signatures[0]
    assert sig.start == prelude
    assert sig.body_len == len(body)
    assert sig.trips == trips
    assert sig.end == prelude + trips * len(body)
    # stationary buffers: every per-slot address step is zero
    assert all(step == 0 for step in sig.ea_steps)


@given(body=_bodies(), trips=st.integers(3, 8))
@settings(max_examples=25, deadline=None)
def test_moving_buffers_have_affine_steps(body, trips):
    """Per-iteration shifted buffers verify with a uniform EA step."""
    program = _build(body, trips, moving=True)
    signatures = pipeline.verify_marks(program)
    assert len(signatures) == 1
    for slot, step in enumerate(signatures[0].ea_steps):
        inst = program.instructions[signatures[0].start + slot]
        assert step == (4096 if inst.ea is not None else 0)


def test_rename_breaks_false_waw_and_keeps_liveouts():
    """A body redefining one register several times gets its earlier
    definitions moved off the architectural name; the final definition
    keeps it, so live-outs are untouched."""
    b = ProgramBuilder("waw")
    with b.loop() as lp:
        for _ in range(6):
            lp.begin()
            b.li(r(1), 5)
            b.st(r(1), ea=0x100)
            b.li(r(1), 9)
            b.st(r(1), ea=0x108)
            b.li(r(1), 13)
    program = b.program
    version = program.version
    baseline = copy.deepcopy(program)
    regions = pipeline.coverage_regions(pipeline.verify_marks(program))
    changed = pipeline.rename_false_deps(program, regions)
    assert changed > 0
    assert program.version == version + 1  # decode memos invalidated
    sig = regions[0]
    body = program.instructions[sig.start:sig.start + sig.body_len]
    defs_of_r1 = [inst for inst in body if r(1) in inst.dsts]
    assert len(defs_of_r1) == 1, "earlier defs must leave r1"
    assert r(1) in body[-1].dsts, "the final def keeps the name"
    # each store still sees the value of its own preceding li
    _assert_same_dataflow(baseline, program)


def test_declared_signatures_agree_with_online_detection():
    """Anchors seeded from the compiler-declared signature land on
    iteration boundaries, and the online (row-periodicity) detection
    agrees: within the region, anchors sharing a trace row are spaced
    by whole iterations."""
    from collections import defaultdict

    from repro.timing import gridskip, predecode

    body = [("vld", 0, 1, 0), ("add", 1, 2, 0), ("simd", 0, 1, 0),
            ("st", 1, 0, 1), ("mul", 2, 1, 0), ("vst", 2, 0, 2)]
    program = _build(body, trips=48)
    pipeline.run(program)
    assert program.loops, "the emission loop must verify"
    sig = program.loops[0]

    core = predecode._decode_core(program)
    (rowid, memord, ptrord, anchors, positions, pdg,
     horizon) = gridskip._skip_core(program, core)
    assert positions, "a 48-trip declared loop must seed anchors"
    region = [p for p in positions if sig.start <= p < sig.end]
    assert region, "no anchors landed inside the declared region"
    # compiler-seeded anchors sit on iteration starts
    assert any((p - sig.start) % sig.body_len == 0 for p in region)
    # online detection concurs: same-row anchors are whole iterations
    # apart (the declared period divides every observed spacing)
    by_row = defaultdict(list)
    for p in region:
        by_row[int(rowid[p])].append(p)
    for group in by_row.values():
        for a, b2 in zip(group, group[1:]):
            assert (b2 - a) % sig.body_len == 0, (a, b2, sig.body_len)
