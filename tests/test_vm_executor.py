"""Functional-simulator tests: scalar ops, vector memory, 3D semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.isa import ElemType, Opcode, ProgramBuilder, acc, d3, r, v
from repro.vm import Executor, FlatMemory, execute


def make_mem(size=1 << 16):
    return FlatMemory(size)


# --- scalar ---------------------------------------------------------------


def test_scalar_arithmetic():
    b = ProgramBuilder()
    b.li(r(1), 7)
    b.li(r(2), 5)
    b.add(r(3), r(1), r(2))
    b.sub(r(4), r(1), r(2))
    b.mul(r(5), r(1), r(2))
    state = execute(b.program, make_mem())
    assert state.read_scalar(r(3)) == 12
    assert state.read_scalar(r(4)) == 2
    assert state.read_scalar(r(5)) == 35


def test_slt_and_cmov():
    b = ProgramBuilder()
    b.li(r(1), 3)
    b.li(r(2), 9)
    b.slt(r(3), r(1), r(2))  # 1
    b.li(r(4), 111)
    b.li(r(5), 42)
    b.cmov(r(4), r(3), r(5))  # taken
    b.slt(r(6), r(2), r(1))  # 0
    b.li(r(7), 77)
    b.cmov(r(7), r(6), r(5))  # not taken
    state = execute(b.program, make_mem())
    assert state.read_scalar(r(4)) == 42
    assert state.read_scalar(r(7)) == 77


def test_scalar_wraparound_signed():
    b = ProgramBuilder()
    b.li(r(1), (1 << 63) - 1)
    b.addi(r(2), r(1), 1)
    state = execute(b.program, make_mem())
    assert state.read_scalar(r(2)) == -(1 << 63)


def test_scalar_load_store():
    b = ProgramBuilder()
    b.li(r(1), 0xDEAD)
    b.st(r(1), ea=0x800)
    b.ld(r(2), ea=0x800)
    state = execute(b.program, make_mem())
    assert state.read_scalar(r(2)) == 0xDEAD


# --- vector memory -----------------------------------------------------------


def test_vld_strided_gather():
    mem = make_mem()
    rows = np.arange(64, dtype=np.uint8).reshape(8, 8)
    # lay rows out 32 bytes apart (image row stride)
    for i in range(8):
        mem.write(0x1000 + 32 * i, rows[i].tobytes())
    b = ProgramBuilder()
    b.setvl(8)
    b.vld(v(0), ea=0x1000, stride=32)
    state = execute(b.program, mem)
    words = state.read_vector(v(0), 8)
    got = words.view(np.uint8).reshape(8, 8)
    assert np.array_equal(got, rows)


def test_vst_strided_scatter():
    mem = make_mem()
    b = ProgramBuilder()
    b.setvl(4)
    b.vld(v(0), ea=0x1000, stride=8)  # zeros
    b.vbcast64(v(1), 0x0101010101010101)
    b.vst(v(1), ea=0x2000, stride=100)
    execute(b.program, mem)
    for k in range(4):
        assert mem.read_u64(0x2000 + 100 * k) == 0x0101010101010101
    # gap untouched
    assert mem.read_u64(0x2000 + 8) == 0


def test_vld_respects_vl():
    mem = make_mem()
    mem.write_u64(0x100, 0xAA)
    mem.write_u64(0x108, 0xBB)
    b = ProgramBuilder()
    b.setvl(1)
    b.vld(v(2), ea=0x100, stride=8)
    state = execute(b.program, mem)
    assert int(state.vector[2, 0]) == 0xAA
    assert int(state.vector[2, 1]) == 0  # untouched beyond VL


# --- uSIMD through the executor ----------------------------------------------


def test_mom_simd_applies_to_all_elements():
    mem = make_mem()
    data = np.arange(32, dtype=np.uint8)
    mem.write(0x1000, data.tobytes())
    b = ProgramBuilder()
    b.setvl(4)
    b.vld(v(0), ea=0x1000, stride=8)
    b.simd(Opcode.PADDB, v(1), v(0), v(0), etype=ElemType.U8)
    state = execute(b.program, mem)
    got = state.read_vector(v(1), 4).view(np.uint8)
    assert np.array_equal(got, (data.astype(np.int32) * 2).astype(np.uint8))


def test_vpsadacc_accumulates_across_elements():
    mem = make_mem()
    a = np.full(32, 9, dtype=np.uint8)
    bb = np.full(32, 4, dtype=np.uint8)
    mem.write(0x1000, a.tobytes())
    mem.write(0x2000, bb.tobytes())
    b = ProgramBuilder()
    b.setvl(4)
    b.clracc(acc(0))
    b.vld(v(0), ea=0x1000, stride=8)
    b.vld(v(1), ea=0x2000, stride=8)
    b.vpsadacc(acc(0), v(0), v(1))
    b.vpsadacc(acc(0), v(0), v(1))  # accumulate twice
    b.movacc(r(1), acc(0))
    state = execute(b.program, mem)
    assert state.read_scalar(r(1)) == 2 * 32 * 5


def test_vpmaddacc():
    mem = make_mem()
    a = np.arange(16, dtype=np.int16)
    bb = np.full(16, 3, dtype=np.int16)
    mem.write(0x1000, a.tobytes())
    mem.write(0x2000, bb.tobytes())
    b = ProgramBuilder()
    b.setvl(4)
    b.clracc(acc(1))
    b.vld(v(0), ea=0x1000, stride=8)
    b.vld(v(1), ea=0x2000, stride=8)
    b.vpmaddacc(acc(1), v(0), v(1))
    b.movacc(r(1), acc(1))
    state = execute(b.program, mem)
    assert state.read_scalar(r(1)) == int((a.astype(int) * 3).sum())


# --- 3D extension ----------------------------------------------------------------


def test_dvload3_and_slices():
    mem = make_mem()
    # 4 rows of 24 bytes, 100 bytes apart
    rows = np.arange(4 * 24, dtype=np.uint8).reshape(4, 24)
    for i in range(4):
        mem.write(0x3000 + 100 * i, rows[i].tobytes())
    b = ProgramBuilder()
    b.setvl(4)
    b.dvload3(d3(0), ea=0x3000, stride=100, wwords=3)
    b.dvmov3(v(0), d3(0), pstride=1)  # slice at offset 0
    b.dvmov3(v(1), d3(0), pstride=1)  # slice at offset 1
    state = execute(b.program, mem)
    s0 = state.read_vector(v(0), 4).view(np.uint8).reshape(4, 8)
    s1 = state.read_vector(v(1), 4).view(np.uint8).reshape(4, 8)
    assert np.array_equal(s0, rows[:, 0:8])
    assert np.array_equal(s1, rows[:, 1:9])


def test_dvload3_backward_flag():
    mem = make_mem()
    rows = np.arange(2 * 16, dtype=np.uint8).reshape(2, 16)
    for i in range(2):
        mem.write(0x3000 + 64 * i, rows[i].tobytes())
    b = ProgramBuilder()
    b.setvl(2)
    b.dvload3(d3(1), ea=0x3000, stride=64, wwords=2, back=True)
    b.dvmov3(v(0), d3(1), pstride=-1)  # last aligned slice
    b.dvmov3(v(1), d3(1), pstride=-1)  # one byte earlier
    state = execute(b.program, mem)
    s0 = state.read_vector(v(0), 2).view(np.uint8).reshape(2, 8)
    s1 = state.read_vector(v(1), 2).view(np.uint8).reshape(2, 8)
    assert np.array_equal(s0, rows[:, 8:16])
    assert np.array_equal(s1, rows[:, 7:15])


def test_dvmov3_pointer_overrun_rejected():
    mem = make_mem()
    b = ProgramBuilder()
    b.setvl(2)
    b.dvload3(d3(0), ea=0x3000, stride=32, wwords=1)
    b.dvmov3(v(0), d3(0), pstride=8)  # ok, moves ptr to 8
    b.dvmov3(v(1), d3(0), pstride=8)  # ptr 8 > width-8 -> error
    ex = Executor(mem)
    with pytest.raises(ExecutionError):
        ex.run(b.program)


@given(
    st.integers(1, 8),  # vl
    st.integers(2, 16),  # wwords
    st.integers(0, 200),  # stride extra
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_dvmov3_matches_flat_gather(vl, wwords, extra, data):
    """Property: slicing a 3D register == gathering from flat memory."""
    mem = make_mem()
    width = wwords * 8
    stride = width + extra
    payload = np.random.RandomState(42).randint(
        0, 256, size=vl * stride + width, dtype=np.uint32).astype(np.uint8)
    mem.write(0x4000, payload.tobytes())
    offset = data.draw(st.integers(0, width - 8))
    b = ProgramBuilder()
    b.setvl(vl)
    b.dvload3(d3(0), ea=0x4000, stride=stride, wwords=wwords)
    b.dvmov3(v(0), d3(0), pstride=offset)   # ptr 0 -> slice at 0
    if offset <= width - 8:
        b.dvmov3(v(1), d3(0), pstride=0)    # slice at `offset`
    state = execute(b.program, mem)
    for k in range(vl):
        expect0 = mem.read_u64(0x4000 + k * stride)
        assert int(state.vector[0, k]) == expect0
        expect1 = mem.read_u64(0x4000 + k * stride + offset)
        assert int(state.vector[1, k]) == expect1


def test_exec_stats_counts():
    b = ProgramBuilder()
    b.li(r(0), 1)
    b.li(r(1), 2)
    b.add(r(2), r(0), r(1))
    ex = Executor(make_mem())
    ex.run(b.program)
    assert ex.stats.instructions == 3
    assert ex.stats.by_opcode[Opcode.LI] == 2
