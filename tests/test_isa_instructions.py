"""Unit tests for instruction construction, validation and the builder."""

import pytest

from repro.errors import IsaError
from repro.isa import (
    ElemType,
    ExecClass,
    Instruction,
    Opcode,
    Program,
    ProgramBuilder,
    acc,
    r,
    v,
    d3,
)


def test_memory_instruction_requires_ea():
    inst = Instruction(op=Opcode.VLD, dsts=(v(0),), stride=8, vl=4)
    with pytest.raises(IsaError):
        inst.validate()


def test_vld_requires_stride():
    inst = Instruction(op=Opcode.VLD, dsts=(v(0),), ea=0x100, vl=4)
    with pytest.raises(IsaError):
        inst.validate()


def test_dvload3_wwords_range():
    bad = Instruction(op=Opcode.DVLOAD3, dsts=(d3(0),), ea=0, stride=8,
                      vl=4, wwords=17)
    with pytest.raises(IsaError):
        bad.validate()
    good = Instruction(op=Opcode.DVLOAD3, dsts=(d3(0),), ea=0, stride=8,
                       vl=4, wwords=16)
    good.validate()


def test_dvmov3_requires_pstride():
    inst = Instruction(op=Opcode.DVMOV3, dsts=(v(0),), srcs=(d3(0),), vl=4)
    with pytest.raises(IsaError):
        inst.validate()


def test_exec_class_mapping():
    assert Instruction(op=Opcode.ADD).exec_class is ExecClass.INT
    assert Instruction(op=Opcode.PADDB).exec_class is ExecClass.SIMD
    assert Instruction(op=Opcode.VLD).exec_class is ExecClass.VMEM
    assert Instruction(op=Opcode.DVLOAD3).exec_class is ExecClass.V3DLOAD
    assert Instruction(op=Opcode.DVMOV3).exec_class is ExecClass.V3DMOVE


def test_builder_tracks_vl():
    b = ProgramBuilder("t")
    b.setvl(8)
    b.vld(v(0), ea=0x1000, stride=64)
    assert b.program.instructions[-1].vl == 8
    b.setvl(2)
    b.simd(Opcode.PADDB, v(1), v(0), v(0), etype=ElemType.U8)
    assert b.program.instructions[-1].vl == 2


def test_builder_setvl_range():
    b = ProgramBuilder()
    with pytest.raises(IsaError):
        b.setvl(0)
    with pytest.raises(IsaError):
        b.setvl(17)


def test_builder_tagging():
    b = ProgramBuilder()
    with b.tagged("kernel_a"):
        b.li(r(0), 1)
    b.li(r(1), 2)
    assert b.program.instructions[0].tag == "kernel_a"
    assert b.program.instructions[1].tag == ""


def test_builder_cmov_reads_dst():
    b = ProgramBuilder()
    b.cmov(r(2), r(0), r(1))
    inst = b.program.instructions[-1]
    assert r(2) in inst.srcs  # old value is an input


def test_program_count_by_class():
    b = ProgramBuilder()
    b.li(r(0), 1)
    b.setvl(4)
    b.vld(v(0), ea=0, stride=8)
    hist = b.program.count_by_class()
    assert hist[ExecClass.INT] == 1
    assert hist[ExecClass.VMEM] == 1


def test_program_append_validates():
    program = Program()
    with pytest.raises(IsaError):
        program.append(Instruction(op=Opcode.VLD, dsts=(v(0),), stride=8))


def test_accumulator_ops_read_accumulator():
    b = ProgramBuilder()
    b.setvl(4)
    b.vpsadacc(acc(0), v(0), v(1))
    inst = b.program.instructions[-1]
    assert acc(0) in inst.srcs and acc(0) in inst.dsts
