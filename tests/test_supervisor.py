"""Autoscale supervisor: hysteresis, cooldown, restart backoff, drain.

Everything runs on the fake-clock pattern from ``test_worker_loop.py``:
the factory hands out fake process handles, ``stats_fn`` replays
scripted queue counters, and the injectable clock makes cooldown and
backoff windows exact instead of flaky sleeps.
"""

import pytest

from repro.service.supervisor import AutoscaleSupervisor


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeHandle:
    """A process-shaped handle: poll/terminate/kill/wait."""

    def __init__(self):
        self.code = None
        self.terminated = False
        self.killed = False

    def poll(self):
        return self.code

    def exit(self, code: int) -> None:  # the "process" crashes
        self.code = code

    def terminate(self) -> None:
        self.terminated = True
        if self.code is None:
            self.code = 0

    def kill(self) -> None:
        self.killed = True
        self.code = -9

    def wait(self, timeout=None):
        return self.code


class FakeReportClient:
    """Captures supervisor_report pushes; scripts the drain reply."""

    def __init__(self):
        self.reports = []
        self.draining = False

    def supervisor_report(self, report):
        self.reports.append(dict(report))
        return {"accepted": True, "draining": self.draining}

    def stats(self):  # unused when stats_fn is injected
        raise AssertionError("stats_fn should be injected")


def make_supervisor(counters, **kwargs):
    """A supervisor on a fake clock over scripted queue counters."""
    clock = FakeClock()
    handles = []

    def factory(_url, _index):
        handle = FakeHandle()
        handles.append(handle)
        return handle

    state = {"backend": counters, "draining": False}
    kwargs.setdefault("min_workers", 1)
    kwargs.setdefault("max_workers", 3)
    kwargs.setdefault("high_water", 2)
    kwargs.setdefault("idle_sweeps", 3)
    kwargs.setdefault("cooldown", 10.0)
    supervisor = AutoscaleSupervisor(
        "http://127.0.0.1:1", worker_factory=factory,
        stats_fn=lambda: state, clock=clock, **kwargs)
    supervisor.client = FakeReportClient()
    return supervisor, clock, handles, state


BUSY = {"pending_shards": 20, "leased_shards": 0,
        "oldest_lease_age": 0.0}
IDLE = {"pending_shards": 0, "leased_shards": 0,
        "oldest_lease_age": 0.0}


def test_scale_up_one_step_per_sweep_under_backlog():
    supervisor, clock, handles, _state = make_supervisor(dict(BUSY))
    supervisor.sweep()  # floor repair: 0 -> min_workers
    assert supervisor.live_workers() == 1
    clock.now += 11
    supervisor.sweep()  # 20 pending > high_water * 1
    assert supervisor.live_workers() == 2
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() == 3
    clock.now += 11
    supervisor.sweep()  # at max_workers: demand is capped
    assert supervisor.live_workers() == 3
    assert supervisor.stats.scale_ups == 3
    assert len(handles) == 3


def test_cooldown_gates_consecutive_scale_ups():
    supervisor, clock, _handles, _state = make_supervisor(dict(BUSY))
    supervisor.sweep()
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() == 2
    supervisor.sweep()  # same instant: still cooling down
    supervisor.sweep()
    assert supervisor.live_workers() == 2
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() == 3


def test_scale_down_needs_consecutive_idle_sweeps():
    supervisor, clock, handles, state = make_supervisor(dict(BUSY))
    supervisor.sweep()
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() == 2

    state["backend"] = dict(IDLE)
    clock.now += 11
    supervisor.sweep()  # idle streak 1
    clock.now += 11
    supervisor.sweep()  # idle streak 2
    assert supervisor.live_workers() == 2  # hysteresis holds
    clock.now += 11
    supervisor.sweep()  # idle streak 3: retire one
    assert supervisor.live_workers() == 1
    assert supervisor.stats.scale_downs == 1
    assert any(handle.terminated for handle in handles)

    # never below the floor, no matter how long the idle streak
    for _ in range(6):
        clock.now += 11
        supervisor.sweep()
    assert supervisor.live_workers() == 1


def test_momentary_lull_does_not_thrash():
    supervisor, clock, _handles, state = make_supervisor(dict(BUSY))
    supervisor.sweep()
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() == 2
    state["backend"] = dict(IDLE)
    clock.now += 11
    supervisor.sweep()  # one idle sweep...
    state["backend"] = dict(BUSY)
    clock.now += 11
    supervisor.sweep()  # ...but the queue came back: streak resets
    state["backend"] = dict(IDLE)
    clock.now += 11
    supervisor.sweep()
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() >= 2  # two idle sweeps < three


def test_crashed_worker_restarts_with_capped_backoff():
    supervisor, clock, handles, _state = make_supervisor(
        dict(IDLE), restart_backoff=1.0, restart_backoff_max=4.0)
    supervisor.sweep()  # floor repair
    assert len(handles) == 1

    handles[0].exit(1)
    clock.now += 1
    supervisor.sweep()  # first restart is immediate
    assert supervisor.stats.restarts == 1
    assert len(handles) == 2
    assert supervisor.live_workers() == 1

    # the replacement crashes instantly, repeatedly: each restart
    # waits the doubled (capped) backoff instead of spinning
    spawned_at = []
    for _ in range(6):
        handles[-1].exit(1)
        before = len(handles)
        supervisor.sweep()  # too soon: backoff holds
        assert len(handles) == before
        while len(handles) == before:
            clock.now += 1.0
            supervisor.sweep()
        spawned_at.append(clock.now)
    gaps = [b - a for a, b in zip(spawned_at, spawned_at[1:])]
    assert max(gaps) <= 4.0 + 1.0  # capped at restart_backoff_max
    assert gaps[-1] >= 3.0  # and genuinely backed off by then
    assert supervisor.stats.restarts == 7


def test_restart_backoff_is_per_slot():
    supervisor, clock, handles, _state = make_supervisor(
        dict(BUSY), restart_backoff=8.0, restart_backoff_max=8.0)
    supervisor.sweep()
    clock.now += 11
    supervisor.sweep()
    assert supervisor.live_workers() == 2
    handles[0].exit(1)
    clock.now += 11
    supervisor.sweep()
    assert supervisor.stats.restarts == 1
    # the healthy slot's backoff was never touched: a later crash of
    # the *other* worker restarts immediately too
    handles[1].exit(1)
    clock.now += 11
    supervisor.sweep()
    assert supervisor.stats.restarts == 2


def test_reports_reach_the_server_every_sweep():
    supervisor, clock, _handles, _state = make_supervisor(dict(IDLE))
    supervisor.sweep()
    clock.now += 11
    supervisor.sweep()
    reports = supervisor.client.reports
    assert len(reports) == 2
    assert reports[-1]["sweeps"] == 2
    assert reports[-1]["workers"] == 1
    assert {"target", "spawned", "restarts", "retired",
            "pid"} <= set(reports[-1])


def test_server_drain_flag_stops_the_loop_and_the_fleet():
    supervisor, clock, handles, state = make_supervisor(dict(BUSY))

    def wait(pause: float) -> bool:
        clock.now += pause
        return False

    supervisor._wait = wait
    state["draining"] = True  # the server got SIGTERM
    stats = supervisor.run()
    assert supervisor.draining
    assert stats.sweeps == 1  # one look was enough
    assert supervisor.slots == []  # fleet torn down
    assert all(handle.code is not None for handle in handles)


def test_unreachable_server_counts_poll_errors_not_crashes():
    supervisor, clock, _handles, _state = make_supervisor(dict(IDLE))

    def explode():
        raise OSError("connection refused")

    supervisor._stats_fn = explode
    supervisor.sweep()
    supervisor.sweep()
    assert supervisor.stats.poll_errors >= 2
    # no counters -> no scaling decisions beyond what exists
    assert supervisor.stats.scale_ups == 0


def test_constructor_validation():
    with pytest.raises(ValueError, match="min_workers"):
        AutoscaleSupervisor("http://x", min_workers=-1)
    with pytest.raises(ValueError, match="max_workers"):
        AutoscaleSupervisor("http://x", min_workers=3, max_workers=2)
    with pytest.raises(ValueError, match="backoff"):
        AutoscaleSupervisor("http://x", restart_backoff=0)
