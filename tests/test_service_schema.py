"""Wire-schema tests: total round-trips and structured failures.

The encode->decode direction is property-tested with hypothesis:
arbitrary valid ``RunSpec``/``RunStats`` values survive a real JSON
round-trip bit-identically.  The decode-of-garbage direction is a
parametrized battery: every malformed payload must raise
:class:`SchemaError` with ``{path, message}`` records — never a bare
``KeyError``/``TypeError`` traceback.
"""

import json
import string

import pytest
from hypothesis import given, strategies as st

from repro.engine.keys import CODING_NAMES, MEMSYS_KINDS, RunSpec
from repro.isa.opcodes import ExecClass, Opcode
from repro.memsys.ports import PortStats
from repro.service.schema import (
    SCHEMA_VERSION,
    ErrorReply,
    JobRequest,
    JobResult,
    SchemaError,
    spec_from_wire,
    spec_to_wire,
    stats_from_wire,
    stats_to_wire,
)
from repro.timing.stats import RunStats, VecLenStats
from repro.workloads import benchmark_names

# --- strategies ---------------------------------------------------------------

_counters = st.integers(min_value=0, max_value=10**9)
_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1,
                 max_size=12)
_scalars = (st.booleans() | st.integers(-10**6, 10**6)
            | st.floats(allow_nan=False, allow_infinity=False,
                        width=64)
            | st.text(alphabet=string.printable, max_size=12))

specs = st.builds(
    RunSpec,
    # decode validates benchmarks up front, so "valid RunSpec" on the
    # wire means a registered benchmark name
    benchmark=st.sampled_from(benchmark_names()),
    coding=st.sampled_from(CODING_NAMES),
    memsys=st.sampled_from(MEMSYS_KINDS),
    l2_latency=st.integers(0, 500),
    warm=st.booleans(),
    seed=st.integers(0, 99),
    overrides=st.dictionaries(_names, _scalars, max_size=4),
)

_ports = st.builds(PortStats, requests=_counters,
                   port_accesses=_counters, cache_accesses=_counters,
                   hits=_counters, misses=_counters,
                   words_loaded=_counters, words_stored=_counters,
                   busy_cycles=_counters)

_veclens = st.builds(
    VecLenStats, lane_sum=_counters, lane_count=_counters,
    vl_sum=_counters, vl_count=_counters, slices=_counters,
    loads3d=_counters, max_slices_per_load=_counters,
    _current_slices=st.dictionaries(st.integers(0, 63),
                                    st.integers(0, 99), max_size=4))

stats_values = st.builds(
    RunStats,
    name=_names,
    cycles=_counters,
    instructions=_counters,
    by_class=st.dictionaries(st.sampled_from(list(ExecClass)),
                             _counters, max_size=5),
    by_opcode=st.dictionaries(st.sampled_from(list(Opcode)),
                              _counters, max_size=5),
    vector_port=_ports,
    l1_port=_ports,
    rf3d_words=_counters,
    rf3d_reads=_counters,
    rf3d_writes=_counters,
    veclen=_veclens,
    l2_hit_rate=st.floats(0.0, 1.0, allow_nan=False),
    coherence_events=_counters,
)


# --- round-trips --------------------------------------------------------------


@given(spec=specs)
def test_spec_round_trip_bit_identical(spec):
    wired = json.loads(json.dumps(spec_to_wire(spec)))
    again = spec_from_wire(wired)
    assert again == spec
    assert again.digest() == spec.digest()


@given(stats=stats_values)
def test_stats_round_trip_bit_identical(stats):
    wired = json.loads(json.dumps(stats_to_wire(stats)))
    again = stats_from_wire(wired)
    assert again == stats
    assert again.to_dict() == stats.to_dict()


@given(grid=st.lists(specs, min_size=1, max_size=5))
def test_job_request_round_trip(grid):
    request = JobRequest(specs=tuple(grid))
    wired = json.loads(json.dumps(request.to_wire()))
    assert JobRequest.from_wire(wired) == request


@given(spec=specs, stats=stats_values)
def test_job_result_round_trip(spec, stats):
    result = JobResult(job_id="abc123", status="done",
                       results=((spec, stats),))
    wired = json.loads(json.dumps(result.to_wire()))
    again = JobResult.from_wire(wired)
    assert again == result
    assert again.stats_by_spec()[spec].to_dict() == stats.to_dict()


def test_error_reply_round_trip():
    reply = ErrorReply(code="invalid-request", message="nope",
                       errors=({"path": "$.x", "message": "bad"},))
    wired = json.loads(json.dumps(reply.to_wire()))
    assert ErrorReply.from_wire(wired) == reply


def test_job_request_sweep_expands_like_engine_sweep():
    from repro.engine import Sweep

    sweep = Sweep(benchmarks=("gsm_encode",), codings=("mom", "mom3d"),
                  memsystems=("vector",), l2_latencies=(20, 40),
                  overrides=({}, {"l2_line": 64}), seed=3)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "sweep": {"benchmarks": ["gsm_encode"],
                  "codings": ["mom", "mom3d"],
                  "memsystems": ["vector"], "l2_latencies": [20, 40],
                  "overrides": [{}, {"l2_line": 64}], "seed": 3},
    }
    assert JobRequest.from_wire(payload).specs == tuple(sweep.specs())


def test_minimal_sweep_payload_uses_sweep_defaults():
    """Omitted wire fields defer to the Sweep dataclass defaults, so
    one definition owns them."""
    from repro.engine import Sweep

    payload = {"schema_version": SCHEMA_VERSION,
               "sweep": {"benchmarks": ["gsm_encode"]}}
    assert JobRequest.from_wire(payload).specs == \
        tuple(Sweep(benchmarks=("gsm_encode",)).specs())


def test_job_request_dedupes_preserving_order():
    a = RunSpec("gsm_encode", "mom")
    b = RunSpec("gsm_encode", "mom3d")
    assert JobRequest(specs=(a, b, a)).specs == (a, b)


# --- malformed payloads -------------------------------------------------------

_MALFORMED_REQUESTS = [
    ("not-an-object", []),
    ("no-version", {"specs": [{"benchmark": "gsm_encode",
                               "coding": "mom"}]}),
    ("wrong-version", {"schema_version": 2, "specs": []}),
    ("neither-specs-nor-sweep", {"schema_version": 1}),
    ("both-specs-and-sweep", {"schema_version": 1, "specs": [],
                              "sweep": {"benchmarks": ["gsm_encode"]}}),
    ("empty-specs", {"schema_version": 1, "specs": []}),
    ("specs-not-a-list", {"schema_version": 1, "specs": "gsm_encode"}),
    ("spec-not-an-object", {"schema_version": 1, "specs": [17]}),
    ("spec-missing-coding", {"schema_version": 1,
                             "specs": [{"benchmark": "gsm_encode"}]}),
    ("spec-bool-latency", {"schema_version": 1,
                           "specs": [{"benchmark": "gsm_encode",
                                      "coding": "mom",
                                      "l2_latency": True}]}),
    ("spec-unknown-benchmark", {"schema_version": 1,
                                "specs": [{"benchmark": "quake3",
                                           "coding": "mom"}]}),
    ("spec-trace-benchmark", {"schema_version": 1,
                              "specs": [{"benchmark": "trace:deadbeef",
                                         "coding": "mom"}]}),
    ("spec-unknown-coding", {"schema_version": 1,
                             "specs": [{"benchmark": "gsm_encode",
                                        "coding": "avx512"}]}),
    ("spec-unknown-memsys", {"schema_version": 1,
                             "specs": [{"benchmark": "gsm_encode",
                                        "coding": "mom",
                                        "memsys": "dram-only"}]}),
    ("override-not-a-pair", {"schema_version": 1,
                             "specs": [{"benchmark": "gsm_encode",
                                        "coding": "mom",
                                        "overrides": [["a", 1, 2]]}]}),
    ("override-non-scalar", {"schema_version": 1,
                             "specs": [{"benchmark": "gsm_encode",
                                        "coding": "mom",
                                        "overrides": [["a", [1]]]}]}),
    ("sweep-no-benchmarks", {"schema_version": 1, "sweep": {}}),
    ("sweep-unknown-field", {"schema_version": 1,
                             "sweep": {"benchmarks": ["gsm_encode"],
                                       "latencies": [20]}}),
    ("sweep-bad-latency", {"schema_version": 1,
                           "sweep": {"benchmarks": ["gsm_encode"],
                                     "l2_latencies": ["20"]}}),
    ("sweep-bad-coding", {"schema_version": 1,
                          "sweep": {"benchmarks": ["gsm_encode"],
                                    "codings": ["mips"]}}),
    ("sweep-unknown-benchmark", {"schema_version": 1,
                                 "sweep": {"benchmarks": ["quake3"]}}),
    ("sweep-zero-specs", {"schema_version": 1,
                          "sweep": {"benchmarks": ["gsm_encode"],
                                    "overrides": []}}),
]


@pytest.mark.parametrize(
    "payload", [payload for _, payload in _MALFORMED_REQUESTS],
    ids=[name for name, _ in _MALFORMED_REQUESTS])
def test_malformed_requests_fail_structurally(payload):
    with pytest.raises(SchemaError) as excinfo:
        JobRequest.from_wire(payload)
    errors = excinfo.value.errors
    assert errors, "SchemaError must carry structured errors"
    for error in errors:
        assert isinstance(error["path"], str) and error["path"]
        assert isinstance(error["message"], str) and error["message"]


def test_multiple_bad_specs_report_every_path():
    payload = {"schema_version": 1,
               "specs": [{"benchmark": "gsm_encode"},
                         {"coding": "mom"}]}
    with pytest.raises(SchemaError) as excinfo:
        JobRequest.from_wire(payload)
    paths = [e["path"] for e in excinfo.value.errors]
    assert any(p.startswith("$.specs[0]") for p in paths)
    assert any(p.startswith("$.specs[1]") for p in paths)


def test_malformed_stats_fail_structurally():
    with pytest.raises(SchemaError) as excinfo:
        stats_from_wire({"name": "x"})
    assert excinfo.value.errors[0]["path"] == "stats"
    with pytest.raises(SchemaError):
        stats_from_wire([1, 2, 3])


def test_job_result_rejects_unknown_status():
    with pytest.raises(SchemaError):
        JobResult.from_wire({"schema_version": 1, "job_id": "x",
                             "status": "exploded"})


def test_grid_size_caps_reject_before_expansion():
    from repro.service.schema import MAX_GRID

    # a few-hundred-byte sweep that would expand past the cap
    payload = {"schema_version": 1,
               "sweep": {"benchmarks": ["gsm_encode"],
                         "codings": ["mom", "mom3d"],
                         "l2_latencies": list(range(MAX_GRID))}}
    with pytest.raises(SchemaError, match="expands to"):
        JobRequest.from_wire(payload)

    spec = {"benchmark": "gsm_encode", "coding": "mom"}
    too_many = {"schema_version": 1, "specs": [spec] * (MAX_GRID + 1)}
    with pytest.raises(SchemaError, match="exceed the limit"):
        JobRequest.from_wire(too_many)
