"""Cache hierarchy tests: scalar path, vector path, coherence."""

import pytest

from repro.memsys import CacheHierarchy, HierarchyConfig


def make():
    return CacheHierarchy(HierarchyConfig())


def test_geometry_defaults_match_paper():
    h = make()
    assert h.l1.size_bytes == 64 * 1024
    assert h.l1.ways == 2
    assert h.l1.line_bytes == 32
    assert not h.l1.write_back  # write-through
    assert h.l2.size_bytes == 2 * 1024 * 1024
    assert h.l2.ways == 4
    assert h.l2.line_bytes == 128
    assert h.l2.write_back


def test_scalar_hit_latency():
    h = make()
    h.scalar_access(0x1000)  # miss, fills both levels
    assert h.scalar_access(0x1000) == h.config.l1_latency


def test_scalar_miss_goes_to_l2_then_memory():
    h = make()
    cold = h.scalar_access(0x1000)
    assert cold == (h.config.l1_latency + h.config.l2_latency
                    + h.config.mem_latency)
    h.l1.invalidate(0x1000)
    l2_only = h.scalar_access(0x1000)
    assert l2_only == h.config.l1_latency + h.config.l2_latency


def test_write_through_updates_l2():
    h = make()
    h.scalar_access(0x2000, is_write=True)
    assert h.l2.probe(0x2000)


def test_vector_access_bypasses_l1():
    h = make()
    hit, extra = h.vector_line_access(0x3000)
    assert not hit and extra == h.config.mem_latency
    assert not h.l1.probe(0x3000)
    hit, extra = h.vector_line_access(0x3000)
    assert hit and extra == 0


def test_exclusive_bit_handoff_scalar_to_vector():
    h = make()
    h.scalar_access(0x4000)
    assert h.l2.is_scalar_owned(0x4000)
    _hit, extra = h.vector_line_access(0x4000)
    assert extra >= h.config.coherence_penalty
    assert h.coherence_events == 1
    assert not h.l1.probe(0x4000)
    # second vector access: no more coherence traffic
    _hit, extra = h.vector_line_access(0x4000)
    assert extra == 0
    assert h.coherence_events == 1


def test_scalar_reclaims_line_after_vector():
    h = make()
    h.scalar_access(0x5000)
    h.vector_line_access(0x5000)
    h.scalar_access(0x5000)
    assert h.l2.is_scalar_owned(0x5000)


def test_writeback_counted_on_dirty_vector_eviction():
    h = CacheHierarchy(HierarchyConfig(l2_size=4 * 128, l2_ways=1))
    set_stride = 4 * 128
    h.vector_line_access(0x0, is_write=True)
    h.vector_line_access(set_stride, is_write=False)  # evicts dirty
    assert h.l2.stats.writebacks == 1


def test_mainmem_counters():
    h = make()
    h.vector_line_access(0x9000)
    assert h.mainmem.line_fetches == 1
