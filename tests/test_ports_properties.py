"""Property-based tests on the vector-port designs' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import (
    CacheHierarchy,
    HierarchyConfig,
    MemRequest,
    MultiBankedPort,
    VectorCachePort,
)

WORD = 8

strides = st.sampled_from([8, -8, 16, 24, 32, 64, 128, 720])
vls = st.integers(1, 16)
addrs = st.integers(0x1000, 0x40000).map(lambda a: a & ~0x7)


def element_request(addr, stride, vl):
    return MemRequest(refs=[(addr + k * stride, WORD) for k in range(vl)],
                      useful_words=vl)


def line_request(addr, stride, vl, wwords):
    return MemRequest(
        refs=[(addr + k * stride, wwords * WORD) for k in range(vl)],
        useful_words=vl * wwords, line_mode=True)


@given(addrs, strides, vls)
@settings(max_examples=60)
def test_vector_cache_access_bounds(addr, stride, vl):
    """Grouping never exceeds vl accesses nor goes below ceil(vl/4)."""
    port = VectorCachePort(CacheHierarchy(HierarchyConfig()))
    sched = port.schedule(element_request(addr, stride, vl), earliest=0)
    assert (vl + 3) // 4 <= sched.port_accesses <= vl
    assert sched.words == vl
    assert sched.busy_cycles == sched.port_accesses


@given(addrs, vls)
@settings(max_examples=40)
def test_vector_cache_dense_is_optimal(addr, vl):
    port = VectorCachePort(CacheHierarchy(HierarchyConfig()))
    sched = port.schedule(element_request(addr, 8, vl), earliest=0)
    assert sched.port_accesses == (vl + 3) // 4


@given(addrs, st.sampled_from([64, 128, 256, 720]), st.integers(1, 8),
       st.integers(1, 16))
@settings(max_examples=60)
def test_line_mode_activity_bounded_by_distinct_lines(addr, stride, vl,
                                                      wwords):
    hierarchy = CacheHierarchy(HierarchyConfig())
    port = VectorCachePort(hierarchy)
    request = line_request(addr, stride, vl, wwords)
    sched = port.schedule(request, earliest=0)
    # distinct lines can never exceed the footprint / line size + slack
    footprint_lines = set()
    for ref_addr, nbytes in request.refs:
        for line in hierarchy.l2.lines_touched(ref_addr, nbytes):
            footprint_lines.add(line)
    assert sched.port_accesses == len(footprint_lines)
    assert sched.words == vl * wwords
    assert sched.busy_cycles >= sched.port_accesses


@given(addrs, strides, vls)
@settings(max_examples=60)
def test_multibank_respects_port_and_bank_limits(addr, stride, vl):
    port = MultiBankedPort(CacheHierarchy(HierarchyConfig()),
                           n_ports=4, n_banks=8)
    sched = port.schedule(element_request(addr, stride, vl), earliest=0)
    # every word reference is one bank access
    assert sched.cache_accesses >= vl
    # at most 4 references retire per cycle
    assert sched.port_accesses >= (sched.cache_accesses + 3) // 4
    assert sched.busy_cycles == sched.port_accesses


@given(addrs, strides, vls)
@settings(max_examples=40)
def test_ports_serialize_monotonically(addr, stride, vl):
    port = VectorCachePort(CacheHierarchy(HierarchyConfig()))
    prev_end = 0
    for k in range(3):
        sched = port.schedule(
            element_request(addr + 0x2000 * k, stride, vl), earliest=0)
        assert sched.start >= prev_end
        prev_end = sched.start + sched.busy_cycles


@given(addrs, strides, vls)
@settings(max_examples=40)
def test_stats_accumulate_consistently(addr, stride, vl):
    port = VectorCachePort(CacheHierarchy(HierarchyConfig()))
    for k in range(3):
        port.schedule(element_request(addr + 0x1000 * k, stride, vl), 0)
    stats = port.stats
    assert stats.requests == 3
    assert stats.words == stats.words_loaded == 3 * vl
    assert stats.hits + stats.misses >= stats.port_accesses
    assert stats.effective_bandwidth == stats.words / stats.port_accesses
