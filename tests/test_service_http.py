"""End-to-end service tests over a real socket.

The headline property (the PR's acceptance criterion): the fig3, fig9
and table1 grids fetched through :class:`ServiceClient` are
byte-identical — per ``RunStats.to_dict()`` — to in-process
``Engine.run_many`` on the same specs, and a warm restart of the
service over the same result cache answers the whole grid with
``simulations=0``.
"""

import http.client
import json

import pytest

from repro.engine import Engine, RunSpec, Sweep
from repro.harness.experiments import paper_grids
from repro.service import (
    SCHEMA_VERSION,
    ServiceClient,
    ServiceError,
    background_server,
)

BENCH = "gsm_encode"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    engine = Engine(jobs=2, cache_dir=cache_dir)
    with background_server(engine, window=0.01) as server:
        yield server, ServiceClient(server.url), cache_dir


def test_health_and_stats_shape(service):
    _server, client, _cache = service
    assert client.health() == {"schema_version": SCHEMA_VERSION,
                               "status": "ok"}
    stats = client.stats()
    assert stats["schema_version"] == SCHEMA_VERSION
    assert set(stats["engine"]) == {"simulations", "memo_hits",
                                    "disk_hits", "stores", "dispatches",
                                    "grid_groups", "grid_fallbacks"}
    assert set(stats["scheduler"]) == {"submitted", "coalesced",
                                       "batches", "batched_specs"}
    assert stats["backend"]["name"] == "process"
    assert stats["cache"]["enabled"] is True


def test_paper_grids_parity_and_warm_restart(service, tmp_path):
    """fig3+fig9+table1 through the service == in-process engine."""
    server, client, cache_dir = service
    grid = paper_grids()

    remote = client.run_many(grid)
    local = Engine(use_cache=False, jobs=2).run_many(grid)
    assert set(remote) == set(local) == set(grid)
    for spec in grid:
        assert remote[spec].to_dict() == local[spec].to_dict(), spec

    # rerun against the same live server: all memo hits, no new sims
    before = client.stats()["engine"]
    again = client.run_many(grid)
    after = client.stats()["engine"]
    assert after["simulations"] == before["simulations"]
    for spec in grid:
        assert again[spec].to_dict() == remote[spec].to_dict()

    # cold-started service over the same cache: zero simulations
    warm_engine = Engine(jobs=2, cache_dir=cache_dir)
    with background_server(warm_engine, window=0.01) as warm_server:
        warm_client = ServiceClient(warm_server.url)
        warm = warm_client.run_many(grid)
        stats = warm_client.stats()
    assert stats["engine"]["simulations"] == 0
    assert stats["engine"]["disk_hits"] == len(grid)
    for spec in grid:
        assert warm[spec].to_dict() == remote[spec].to_dict()


def test_sweep_submission_expands_server_side(service):
    _server, client, _cache = service
    sweep = Sweep(benchmarks=(BENCH,), codings=("mom", "mom3d"),
                  memsystems=("ideal",))
    results = client.sweep(sweep)
    assert set(results) == set(sweep.specs())
    direct = client.run_many(sweep.specs())
    for spec in sweep.specs():
        assert results[spec].to_dict() == direct[spec].to_dict()


def test_concurrent_clients_share_one_simulation_pass(tmp_path):
    """Many threads fanning the same grid in: one simulation per unique
    spec, the rest coalesced server-side."""
    import threading

    engine = Engine(use_cache=False)
    specs = Sweep(benchmarks=(BENCH,), codings=("mom", "mom3d"),
                  memsystems=("ideal",)).specs()
    with background_server(engine, window=0.05) as server:
        results: list[dict] = []
        errors: list[Exception] = []

        def fan_in():
            try:
                client = ServiceClient(server.url)
                got = client.run_many(specs)
                results.append({s: r.to_dict() for s, r in got.items()})
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=fan_in) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        scheduler_stats = server.scheduler.stats

    assert not errors
    assert len(results) == 6
    assert all(r == results[0] for r in results)
    # one simulation per unique spec, regardless of client count
    assert engine.stats.simulations == len(set(specs))
    assert scheduler_stats.coalesced + engine.stats.memo_hits > 0


def test_timing_model_override_rides_the_wire(service):
    _server, client, _cache = service
    batched = RunSpec(BENCH, "mom", "ideal")
    reference = RunSpec(BENCH, "mom", "ideal",
                        overrides={"timing_model": "reference"})
    results = client.run_many([batched, reference])
    assert results[batched].to_dict() == results[reference].to_dict()


# --- HTTP error surface -------------------------------------------------------


def _raw(server, method, path, body=None, headers=()):
    connection = http.client.HTTPConnection("127.0.0.1", server.port,
                                            timeout=10)
    try:
        connection.request(method, path, body=body,
                           headers=dict(headers))
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def test_results_endpoint_queries_the_cache(service):
    """``GET /v1/results`` answers straight from the result cache."""
    _server, client, _cache = service
    specs = [RunSpec(BENCH, coding, "ideal")
             for coding in ("mmx", "mom", "mom3d")]
    expected = client.run_many(specs)

    reply = client.query_results(benchmark=BENCH, memsys="ideal")
    assert reply.layout in ("file", "segment")
    assert reply.truncated is False
    got = {spec: stats for spec, stats in reply.results}
    for spec in specs:
        assert got[spec].to_dict() == expected[spec].to_dict(), spec

    narrowed = client.query_results(benchmark=BENCH, coding="mom3d",
                                    memsys="ideal")
    assert {spec.coding for spec, _ in narrowed.results} == {"mom3d"}
    limited = client.query_results(benchmark=BENCH, memsys="ideal",
                                   limit=2)
    assert len(limited.results) == 2 and limited.truncated is True
    assert client.query_results(benchmark="no-such-bench").results == ()


def test_results_endpoint_rejects_bad_queries(service):
    server, _client, _cache = service
    for query in ("bogus=1", "limit=0", "limit=nope", "warm=maybe",
                  "l2_latency=soon"):
        status, body = _raw(server, "GET", f"/v1/results?{query}")
        assert status == 400, query
        assert json.loads(body)["error"]["code"] == "bad-query"
    status, _ = _raw(server, "GET", "/v1/results?version=unknown-ver")
    assert status == 200  # unknown version: empty results, not an error


def test_results_endpoint_404_without_cache():
    engine = Engine(use_cache=False, backend="inline")
    with background_server(engine, window=0.01) as server:
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).query_results()
        assert excinfo.value.status == 404
        assert excinfo.value.reply.code == "no-cache"


def test_unknown_endpoint_404(service):
    server, _client, _cache = service
    status, body = _raw(server, "GET", "/v2/jobs")
    assert status == 404
    assert json.loads(body)["error"]["code"] == "not-found"


def test_wrong_method_405(service):
    server, _client, _cache = service
    status, body = _raw(server, "DELETE", "/v1/jobs")
    assert status == 405
    assert json.loads(body)["error"]["code"] == "method-not-allowed"


def test_unknown_job_404(service):
    _server, client, _cache = service
    with pytest.raises(ServiceError) as excinfo:
        client.poll("definitely-not-a-job")
    assert excinfo.value.status == 404
    assert excinfo.value.reply is not None
    assert excinfo.value.reply.code == "unknown-job"


def test_client_url_parsing():
    client = ServiceClient("http://gateway.internal/repro/")
    assert (client.host, client.port, client.prefix) == \
        ("gateway.internal", 80, "/repro")
    v6 = ServiceClient("http://[::1]:8737")
    assert (v6.host, v6.port, v6.prefix) == ("::1", 8737, "")
    bare = ServiceClient("127.0.0.1:9000")
    assert (bare.host, bare.port) == ("127.0.0.1", 9000)
    with pytest.raises(ValueError, match="scheme"):
        ServiceClient("https://secure.example")


def test_negative_content_length_400(service):
    server, _client, _cache = service
    status, body = _raw(server, "POST", "/v1/jobs", body=b"",
                        headers=[("Content-Length", "-1")])
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad-request"


def test_header_flood_400(service):
    server, _client, _cache = service
    status, body = _raw(server, "GET", "/v1/health",
                        headers=[(f"x-flood-{i}", "a")
                                 for i in range(200)])
    assert status == 400
    assert "headers" in json.loads(body)["error"]["message"]


def test_bad_json_400(service):
    server, _client, _cache = service
    status, body = _raw(server, "POST", "/v1/jobs", body=b"{nope",
                        headers=[("Content-Length", "5")])
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad-json"


def test_malformed_request_400_with_structured_errors(service):
    server, _client, _cache = service
    payload = json.dumps({"schema_version": SCHEMA_VERSION,
                          "specs": [{"benchmark": BENCH}]}).encode()
    status, body = _raw(server, "POST", "/v1/jobs", body=payload)
    assert status == 400
    error = json.loads(body)["error"]
    assert error["code"] == "invalid-request"
    assert error["errors"][0]["path"] == "$.specs[0].coding"


def test_schema_version_mismatch_400(service):
    server, _client, _cache = service
    payload = json.dumps({"schema_version": 999,
                          "specs": [{"benchmark": BENCH,
                                     "coding": "mom"}]}).encode()
    status, body = _raw(server, "POST", "/v1/jobs", body=payload)
    assert status == 400
    assert "unsupported schema version" in \
        json.loads(body)["error"]["message"]


def test_work_endpoints_404_without_remote_backend(service):
    """A local-backend service has no work queue: workers asking for
    shards must get a structured refusal, not an empty lease."""
    server, client, _cache = service
    payload = json.dumps({"schema_version": SCHEMA_VERSION,
                          "worker_id": "w1"}).encode()
    status, body = _raw(server, "POST", "/v1/work/lease", body=payload)
    assert status == 404
    assert json.loads(body)["error"]["code"] == "no-work-queue"
    with pytest.raises(ServiceError) as excinfo:
        client.lease_work("w1")
    assert excinfo.value.reply.code == "no-work-queue"


def test_work_lease_rejects_malformed_payload():
    from repro.engine import Engine, RemoteBackend

    engine = Engine(use_cache=False,
                    backend=RemoteBackend(wait_timeout=5))
    with background_server(engine) as server:
        payload = json.dumps({"schema_version": SCHEMA_VERSION}).encode()
        status, body = _raw(server, "POST", "/v1/work/lease",
                            body=payload)
        assert status == 400
        error = json.loads(body)["error"]
        assert error["errors"][0]["path"] == "$.worker_id"

        completion = json.dumps({
            "schema_version": SCHEMA_VERSION, "worker_id": "w1",
            "lease_id": "nope", "shard_id": "nope",
            "results": [{"spec": {"benchmark": BENCH, "coding": "mom"},
                         "stats": {}}]}).encode()
        status, body = _raw(server, "POST", "/v1/work/complete",
                            body=completion)
        assert status == 400  # malformed RunStats payload

        # well-formed but naming a shard this queue never issued
        from repro.engine.parallel import execute_spec
        spec = RunSpec(BENCH, "mom", "ideal")
        stats = execute_spec(spec)
        completion = json.dumps({
            "schema_version": SCHEMA_VERSION, "worker_id": "w1",
            "lease_id": "nope", "shard_id": "nope",
            "results": [{"spec": spec.to_dict(),
                         "stats": stats.to_dict()}]}).encode()
        status, body = _raw(server, "POST", "/v1/work/complete",
                            body=completion)
        assert status == 400
        assert json.loads(body)["error"]["code"] == "invalid-work"


def test_unknown_benchmark_rejected_at_submission(service):
    """Benchmarks are validated at the wire, not at build time: an
    unknown name is a structured 400, never a later failed job."""
    _server, client, _cache = service
    with pytest.raises(ServiceError) as excinfo:
        client.submit([RunSpec("no_such_bench", "mom")])
    assert excinfo.value.status == 400
    assert excinfo.value.reply is not None
    assert "no_such_bench" in excinfo.value.reply.message


def test_execution_error_becomes_failed_job(service):
    """Errors only detectable at build time (an override field no
    config layer owns) surface as a failed job, not a traceback."""
    _server, client, _cache = service
    job = client.submit([RunSpec(BENCH, "mom", "ideal",
                                 overrides={"warp_size": 32})])
    with pytest.raises(ServiceError, match="warp_size"):
        client.wait(job.job_id, timeout=30)


def test_running_job_limit_maps_to_429(service):
    server, client, _cache = service
    old_limit = server.jobs.limit
    server.jobs.limit = 0
    try:
        with pytest.raises(ServiceError) as excinfo:
            client.submit([RunSpec(BENCH, "mom", "ideal")])
        assert excinfo.value.status == 429
        assert excinfo.value.reply is not None
        assert excinfo.value.reply.code == "too-many-jobs"
    finally:
        server.jobs.limit = old_limit
