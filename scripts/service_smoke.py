"""CI service smoke: fig3 grid through the client SDK, with parity.

Run against a live ``repro serve`` instance:

    python scripts/service_smoke.py --url http://127.0.0.1:8737 \
        --phase cold --out cold.json

* fetches the fig3 evaluation grid via ``ServiceClient.run_many``;
* asserts the server-side engine counters match the phase — ``cold``
  simulated every unique spec, ``warm`` (a restart over the same
  result cache) simulated **zero**;
* recomputes the grid with an in-process ``Engine.run_many`` and
  asserts the wire results are byte-identical (``RunStats.to_dict``) —
  the same stats the ``repro run fig3`` / ``tables`` output renders;
* writes the results keyed by spec digest to ``--out`` (sorted,
  canonical JSON) so CI can ``cmp`` the cold and warm phases.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import Engine  # noqa: E402
from repro.harness.experiments import fig3_sweep  # noqa: E402
from repro.service import ServiceClient  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8737")
    parser.add_argument("--phase", choices=("cold", "warm"),
                        required=True)
    parser.add_argument("--out", required=True)
    args = parser.parse_args(argv)

    specs = fig3_sweep().specs()  # the canonical `repro run fig3` grid
    unique = list(dict.fromkeys(specs))
    client = ServiceClient(args.url)

    remote = client.run_many(specs, timeout=600)
    engine_stats = client.stats()["engine"]
    print(f"[smoke] {args.phase}: fetched {len(remote)} specs; "
          f"server engine counters: {engine_stats}")

    if args.phase == "cold":
        assert engine_stats["simulations"] == len(unique), (
            f"cold service should have simulated {len(unique)} specs, "
            f"reported {engine_stats['simulations']}")
    else:
        assert engine_stats["simulations"] == 0, (
            f"warm service rerun must report simulations=0, got "
            f"{engine_stats['simulations']}")
        assert engine_stats["disk_hits"] == len(unique)

    local = Engine(use_cache=False, jobs=2).run_many(specs)
    mismatched = [spec.label() for spec in unique
                  if remote[spec].to_dict() != local[spec].to_dict()]
    assert not mismatched, f"wire/in-process divergence: {mismatched}"
    print(f"[smoke] {args.phase}: wire results byte-identical to "
          f"in-process Engine.run_many on all {len(unique)} specs")

    payload = {spec.digest(): remote[spec].to_dict()
               for spec in unique}
    Path(args.out).write_text(
        json.dumps(payload, sort_keys=True, indent=1) + "\n")
    print(f"[smoke] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
