"""CI chaos smoke: the fig3 grid through a fleet under injected faults.

Stands up the full production topology itself —

* ``repro serve --backend remote`` with ``store.write:torn@1`` in its
  environment (the server's first result-cache segment write is torn
  mid-frame: the cache must degrade to memo-only and keep serving);
* ``repro autoscale`` whose spawned worker inherits
  ``worker.simulate:sigkill@1`` (every supervised worker is SIGKILLed
  mid-shard: the supervisor must restart it, and the orphaned lease
  must expire back into the queue for the healthy worker);
* one healthy ``repro worker`` that actually lands the grid —

then asserts what resilience promises:

* the fig3 results coming back over the wire are **byte-identical** to
  an in-process ``Engine.run_many`` (chaos may cost latency, never
  correctness);
* zero lost or duplicated shards (``completed_specs`` == grid size,
  ``duplicate_completions`` == 0, nothing left pending or leased);
* the supervisor restarted the SIGKILLed worker (``restarts >= 1`` in
  its ``/v1/supervisor/report`` pushes, ``repro_supervisor_*`` on
  ``/v1/metrics``);
* the torn write shows up as ``repro_degraded_cache_writes_total >= 1``
  with the service still answering;
* ``SIGTERM`` drains the server cleanly: exit code 0 within the grace
  window, and the supervisor (seeing the drain flag) exits 0 too.

Usage::

    python scripts/chaos_smoke.py --port 8742 --out chaos.json
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import Engine  # noqa: E402
from repro.harness.experiments import fig3_sweep  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

FAULT_SEED = "7"
SERVER_FAULTS = "store.write:torn@1"
WORKER_FAULTS = "worker.simulate:sigkill@1"


def _clean_env() -> dict:
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    return env


def _spawn(cmd, env, log_path):
    log = open(log_path, "w")
    return subprocess.Popen(cmd, env=env, stdin=subprocess.DEVNULL,
                            stdout=log, stderr=subprocess.STDOUT)


def _wait_health(client: ServiceClient, deadline: float) -> None:
    while True:
        try:
            client.health()
            return
        except (ServiceError, OSError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def _scrape(client: ServiceClient) -> dict:
    out = {}
    for line in client.metrics().splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8742)
    parser.add_argument("--out", default=None)
    parser.add_argument("--timeout", type=float, default=240.0,
                        help="overall budget for the chaotic cold grid")
    args = parser.parse_args(argv)

    url = f"http://127.0.0.1:{args.port}"
    python = sys.executable
    base = _clean_env()
    base.setdefault("PYTHONPATH", "src")
    root = Path.cwd()
    caches = {name: root / f".chaos-cache-{name}"
              for name in ("server", "fleet", "healthy")}

    server_env = dict(base, REPRO_FAULTS=SERVER_FAULTS,
                      REPRO_FAULTS_SEED=FAULT_SEED)
    fleet_env = dict(base, REPRO_FAULTS=WORKER_FAULTS,
                     REPRO_FAULTS_SEED=FAULT_SEED)

    procs = {}
    try:
        procs["server"] = _spawn(
            [python, "-m", "repro", "serve", "--port", str(args.port),
             "--jobs", "4", "--backend", "remote", "--lease-ttl", "3",
             "--drain-grace", "20",
             "--cache-dir", str(caches["server"])],
            server_env, "chaos-serve.log")
        client = ServiceClient(url)
        _wait_health(client, time.monotonic() + 30)

        # the supervised fleet: every worker it spawns inherits the
        # sigkill plan, so each incarnation dies on its first shard —
        # a permanent crash loop the restart backoff must pace
        procs["autoscale"] = _spawn(
            [python, "-m", "repro", "autoscale", "--url", url,
             "--min-workers", "1", "--max-workers", "2",
             "--sweep-interval", "0.5", "--cooldown", "2",
             "--stale-lease-age", "5",
             f"--worker-arg=--cache-dir",
             f"--worker-arg={caches['fleet']}"],
            fleet_env, "chaos-autoscale.log")

        specs = fig3_sweep().specs()
        unique = list(dict.fromkeys(specs))
        print(f"[chaos] submitting the fig3 grid "
              f"({len(unique)} specs) into the storm")
        job = client.submit(specs)

        # with only doomed workers attached, the first lease is
        # guaranteed to meet the SIGKILL; hold the healthy worker back
        # until the supervisor has actually performed a restart
        deadline = time.monotonic() + 60
        while True:
            report = client.stats().get("supervisor", {})
            if report.get("restarts", 0) >= 1:
                break
            assert time.monotonic() < deadline, (
                f"supervisor never reported a restart: {report}")
            time.sleep(0.5)
        print(f"[chaos] worker SIGKILLed mid-shard and restarted "
              f"(restarts={report['restarts']}, "
              f"spawned={report['spawned']})")

        # now the healthy worker that actually lands the grid once
        # the doomed workers' leases expire back into the queue
        procs["worker"] = _spawn(
            [python, "-m", "repro", "worker", "--url", url,
             "--id", "chaos-healthy",
             "--cache-dir", str(caches["healthy"])],
            base, "chaos-worker.log")

        done = client.wait(job.job_id, timeout=args.timeout)
        remote = done.stats_by_spec()

        # correctness first: chaos may cost latency, never answers
        local = Engine(use_cache=False, jobs=2).run_many(specs)
        mismatched = [spec.label() for spec in unique
                      if remote[spec].to_dict() != local[spec].to_dict()]
        assert not mismatched, \
            f"chaos changed results: {mismatched}"
        print(f"[chaos] all {len(unique)} results byte-identical to "
              f"in-process Engine.run_many")

        # zero lost shards: everything completed exactly once
        stats = client.stats()
        backend = stats["backend"]
        assert backend["completed_specs"] == len(unique), backend
        assert backend["duplicate_completions"] == 0, backend
        assert backend["pending_shards"] == 0, backend
        assert backend["leased_shards"] == 0, backend
        assert backend["releases"] >= 1, (
            f"the SIGKILLed worker's lease should have expired back "
            f"into the queue: {backend}")
        print(f"[chaos] queue reconciled: {backend['completions']} "
              f"completions, {backend['releases']} TTL re-leases, "
              f"0 duplicates, 0 lost")

        series = _scrape(client)
        for name in ("repro_supervisor_restarts_total",
                     "repro_supervisor_workers",
                     "repro_degraded_cache_writes_total",
                     "repro_degraded_cache"):
            assert name in series, f"/v1/metrics is missing {name}"
        assert series["repro_supervisor_restarts_total"] >= 1, series
        # the torn segment write degraded the server cache to
        # memo-only — counted, not fatal
        assert series["repro_degraded_cache_writes_total"] >= 1, series
        assert series["repro_degraded_cache"] == 1.0, series
        print("[chaos] torn store write degraded the cache to "
              "memo-only and the service kept answering")

        if args.out:
            payload = {spec.digest(): remote[spec].to_dict()
                       for spec in unique}
            Path(args.out).write_text(
                json.dumps(payload, sort_keys=True, indent=1) + "\n")
            print(f"[chaos] wrote {args.out}")

        # graceful drain: SIGTERM must refuse new work, flush, exit 0
        procs["server"].send_signal(signal.SIGTERM)
        code = procs["server"].wait(timeout=40)
        assert code == 0, f"server drain exited {code}, wanted 0"
        print("[chaos] SIGTERM drain: server exited 0")

        # the supervisor sees the drain (or the server going away);
        # SIGINT asks it to tear the fleet down and report
        procs["autoscale"].send_signal(signal.SIGINT)
        code = procs["autoscale"].wait(timeout=30)
        assert code == 0, f"supervisor exited {code}, wanted 0"
        print("[chaos] supervisor drained the fleet and exited 0")
        return 0
    finally:
        for name, proc in procs.items():
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        for log in ("chaos-serve.log", "chaos-autoscale.log",
                    "chaos-worker.log"):
            if Path(log).exists():
                print(f"--- {log} ---")
                print(Path(log).read_text())


if __name__ == "__main__":
    sys.exit(main())
