"""CI distributed smoke: fig3 via a remote-backend service + workers.

Run against a live ``repro serve --backend remote`` instance with
``repro worker`` processes attached:

    python scripts/distributed_smoke.py --url http://127.0.0.1:8737 \
        --phase cold --out cold.json

* fetches the fig3 evaluation grid via ``ServiceClient.run_many`` —
  the server's engine dispatches every uncached spec to the attached
  workers through ``/v1/work/lease``/``/v1/work/complete``;
* asserts the server-side counters match the phase: ``cold``
  dispatched every unique spec to the workers and admitted each shard
  exactly once (completions == shards, zero duplicates); ``warm`` (a
  restart over the same result cache, no workers needed) simulated and
  dispatched **nothing**;
* scrapes ``GET /v1/metrics`` and asserts the core Prometheus series
  agree with the phase (cold: simulations counter == unique specs and
  at least two fleet workers reported in; warm: zero simulations);
* recomputes the grid with an in-process ``Engine.run_many`` and
  asserts the wire results are byte-identical (``RunStats.to_dict``);
* writes the results keyed by spec digest to ``--out`` (sorted,
  canonical JSON) so CI can ``cmp`` the cold and warm phases.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import Engine  # noqa: E402
from repro.harness.experiments import fig3_sweep  # noqa: E402
from repro.service import ServiceClient  # noqa: E402


def _scrape(client: ServiceClient) -> dict:
    """``/v1/metrics`` as a ``{series name: value}`` dict."""
    out = {}
    for line in client.metrics().splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8737")
    parser.add_argument("--phase", choices=("cold", "warm"),
                        required=True)
    parser.add_argument("--out", required=True)
    args = parser.parse_args(argv)

    specs = fig3_sweep().specs()  # the canonical `repro run fig3` grid
    unique = list(dict.fromkeys(specs))
    client = ServiceClient(args.url)

    stats = client.stats()
    assert stats["backend"]["name"] == "remote", (
        f"distributed smoke needs 'repro serve --backend remote', "
        f"got backend {stats['backend']['name']!r}")

    remote = client.run_many(specs, timeout=600)
    stats = client.stats()
    engine_stats = stats["engine"]
    backend_stats = stats["backend"]
    print(f"[smoke] {args.phase}: fetched {len(remote)} specs; "
          f"engine: {engine_stats}; backend: {backend_stats}")

    if args.phase == "cold":
        assert engine_stats["simulations"] == len(unique), (
            f"cold service should have admitted {len(unique)} worker "
            f"results, reported {engine_stats['simulations']}")
        # every shard dispatched to the worker fleet was simulated
        # exactly once: each enqueued shard completed, no shard (or
        # spec) was admitted twice
        assert backend_stats["enqueued_shards"] >= 1
        assert backend_stats["completions"] == \
            backend_stats["enqueued_shards"], backend_stats
        assert backend_stats["completed_specs"] == len(unique), \
            backend_stats
        assert backend_stats["duplicate_completions"] == 0, \
            backend_stats
    else:
        assert engine_stats["simulations"] == 0, (
            f"warm service rerun must report simulations=0, got "
            f"{engine_stats['simulations']}")
        assert engine_stats["disk_hits"] == len(unique)
        # the warm grid never touched the worker fleet
        assert backend_stats["enqueued_shards"] == 0, backend_stats

    series = _scrape(client)
    for name in ("repro_engine_simulations_total",
                 "repro_queue_pending_shards",
                 "repro_queue_oldest_lease_age_seconds",
                 "repro_fleet_workers",
                 "repro_scheduler_job_latency_seconds_count"):
        assert name in series, f"/v1/metrics is missing {name}"
    assert series["repro_engine_simulations_total"] == \
        engine_stats["simulations"], series
    assert series["repro_queue_pending_shards"] == 0, series
    assert series["repro_scheduler_job_latency_seconds_count"] == \
        len(unique), series
    if args.phase == "cold":
        # both CI workers leased work, so both reported in
        assert series["repro_fleet_workers"] >= 2, series
        assert series["repro_worker_shard_seconds_count"] >= 1, series
    print(f"[smoke] {args.phase}: /v1/metrics serves "
          f"{len(series)} series consistent with /v1/stats")

    local = Engine(use_cache=False, jobs=2).run_many(specs)
    mismatched = [spec.label() for spec in unique
                  if remote[spec].to_dict() != local[spec].to_dict()]
    assert not mismatched, f"remote/in-process divergence: {mismatched}"
    print(f"[smoke] {args.phase}: worker-produced results are "
          f"byte-identical to in-process Engine.run_many on all "
          f"{len(unique)} specs")

    payload = {spec.digest(): remote[spec].to_dict()
               for spec in unique}
    Path(args.out).write_text(
        json.dumps(payload, sort_keys=True, indent=1) + "\n")
    print(f"[smoke] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
