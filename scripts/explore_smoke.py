"""CI explore smoke: an epsilon-constraint query over the service.

Run against a live ``repro serve`` instance:

    python scripts/explore_smoke.py --url http://127.0.0.1:8737 \
        --phase cold --out cold.json

* submits the acceptance query — cheapest register-file area with
  slowdown within 5% of the best, over codings x {vector, ideal} on
  two workloads — via ``POST /v1/explore`` and waits for the answer;
* asserts the server-side engine counters match the phase: ``cold``
  simulated exactly the specs the exploration requested, ``warm`` (a
  restart over the same result cache) simulated **zero**;
* checks the ``/v1/stats`` explore section and the ``repro_explore_*``
  series on ``/v1/metrics`` recorded the job;
* writes the frontier, optimum, bound and search counters to ``--out``
  (sorted, canonical JSON) so CI can ``cmp`` the cold and warm phases
  — the answer must be bit-identical across the restart.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.explore import Constraint, ExploreQuery  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

BENCHMARKS = ("gsm_encode", "mpeg2_decode")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8737")
    parser.add_argument("--phase", choices=("cold", "warm"),
                        required=True)
    parser.add_argument("--out", required=True)
    args = parser.parse_args(argv)

    query = ExploreQuery(
        codings=("mmx", "mom", "mom3d"),
        memsystems=("vector", "ideal"),
        benchmarks=BENCHMARKS,
        constraint=Constraint("slowdown", within=0.05),
        minimize="area_tracks")
    client = ServiceClient(args.url)

    result = client.run_explore(query, timeout=600)
    assert result.status == "done", result
    assert result.frontier and result.best is not None, result
    search = result.stats
    engine_stats = client.stats()["engine"]
    explore_stats = client.stats()["explore"]
    print(f"[smoke] {args.phase}: frontier={len(result.frontier)} "
          f"best={result.best.candidate.label()} "
          f"specs={search['specs_requested']}/"
          f"{search['exhaustive_specs']}; "
          f"server engine counters: {engine_stats}")

    if args.phase == "cold":
        assert engine_stats["simulations"] == \
            search["specs_requested"], (
                f"cold explore requested {search['specs_requested']} "
                f"specs but the engine simulated "
                f"{engine_stats['simulations']}")
    else:
        assert engine_stats["simulations"] == 0, (
            f"warm explore re-query must report simulations=0, got "
            f"{engine_stats['simulations']}")

    assert explore_stats["jobs"] >= 1, explore_stats
    assert explore_stats["failed"] == 0, explore_stats
    metrics = client.metrics()
    for series in ("repro_explore_jobs_total",
                   "repro_explore_specs_requested_total",
                   "repro_explore_last_frontier_size"):
        assert series in metrics, f"missing {series} on /v1/metrics"
    print(f"[smoke] {args.phase}: explore stats + metrics series "
          f"present: {explore_stats}")

    payload = {
        "frontier": [record.to_dict() for record in result.frontier],
        "best": result.best.to_dict(),
        "bound": result.bound,
        "specs_requested": search["specs_requested"],
        "exhaustive_specs": search["exhaustive_specs"],
        "candidates_pruned": search["candidates_pruned"],
    }
    Path(args.out).write_text(
        json.dumps(payload, sort_keys=True, indent=1) + "\n")
    print(f"[smoke] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
