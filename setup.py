"""Legacy setup shim.

The execution environment has no ``wheel`` package (and no network), so
PEP 660 editable installs cannot build; this shim lets
``pip install -e .`` fall back to the classic setuptools develop path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
