"""Compile the paper's Fig. 1 fullsearch kernel from a loop nest.

This walks the whole compiler path: express the motion-estimation
kernel as an affine loop nest, let the 2D pass vectorize it for MOM,
then let the 3D memory-vectorization pass pack the candidate loop's
overlapping streams into dvload3 slabs — and verify both codings
compute the identical motion vector.

Run:  python examples/compile_fullsearch.py
"""

import numpy as np

from repro.compiler import (
    Affine,
    Loop,
    Ref,
    ReduceSelectNest,
    Reduction,
    Select,
    compile_reduce_select,
)
from repro.isa import ElemType
from repro.timing import (
    mom3d_processor,
    mom_processor,
    simulate,
    vector_memsys,
)
from repro.vm import Arena, Executor, FlatMemory
from repro.workloads.frames import shifted_frame, synthetic_frame

WIDTH, HEIGHT = 64, 48
BX, BY, WIN = 24, 16, 3


def build_nest() -> ReduceSelectNest:
    """int fullsearch(...): the k/j/i nest of the paper's Fig. 1."""
    n = 2 * WIN + 1
    ref_stream = Ref(
        "ref",
        Affine((BY) * WIDTH + (BX - WIN), {"k": 1, "j": WIDTH, "i": 1}),
        ElemType.U8)
    cur_block = Ref(
        "cur", Affine(BY * WIDTH + BX, {"j": WIDTH, "i": 1}),
        ElemType.U8)
    return ReduceSelectNest(
        k=Loop("k", n),  # candidate positions along the x axis
        j=Loop("j", 8),  # rows: the MOM vector dimension
        i=Loop("i", 8),  # pixels: the uSIMD dimension
        reduction=Reduction("sad", ref_stream, cur_block),
        select=Select("min"))


def main() -> None:
    memory = FlatMemory(1 << 18)
    arena = Arena(memory)
    ref = synthetic_frame(WIDTH, HEIGHT, seed=1)
    cur = shifted_frame(ref, dx=2, dy=0, noise_amp=1, seed=2)
    symbols = {"ref": arena.alloc_array(ref),
               "cur": arena.alloc_array(cur)}
    result = arena.alloc(16)
    nest = build_nest()

    for use_3d in (False, True):
        compiled = compile_reduce_select(nest, symbols, result,
                                         use_3d=use_3d)
        mem = FlatMemory(1 << 18)
        mem.data[:] = memory.data
        Executor(mem).run(compiled.builder.program)
        idx = mem.read_u64(result)
        sad = mem.read_u64(result + 8)
        proc = mom3d_processor() if use_3d else mom_processor()
        stats = simulate(compiled.builder.program, proc, vector_memsys())
        coding = "MOM+3D" if use_3d else "MOM   "
        print(f"{coding}: best dx={idx - WIN:+d} (SAD {sad}), "
              f"{len(compiled.builder.program)} insts, "
              f"{stats.cycles} cycles, {stats.l2_activity} L2 accesses")

    # cross-check against plain numpy
    block = cur[BY:BY + 8, BX:BX + 8].astype(int)
    sads = [np.abs(ref[BY:BY + 8, BX + d:BX + d + 8].astype(int)
                   - block).sum() for d in range(-WIN, WIN + 1)]
    print(f"numpy : best dx={int(np.argmin(sads)) - WIN:+d} "
          f"(SAD {min(sads)})")


if __name__ == "__main__":
    main()
