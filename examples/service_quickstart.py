"""Job service quickstart: host the engine over HTTP, fan clients in.

Spins up the service on a background thread, then shows the three
things the job API buys over in-process calls:

1. engine-shaped results over the wire (``ServiceClient.run_many``
   matches ``Engine.run_many`` bit-for-bit);
2. request coalescing — several clients submitting the same grid
   concurrently cost one simulation pass;
3. a shared warm path — reruns answer from the engine memo/cache with
   ``simulations`` unchanged.

Run:  python examples/service_quickstart.py
"""

import threading

from repro.engine import Engine, Sweep
from repro.service import ServiceClient, background_server


def main() -> None:
    engine = Engine(jobs=2, use_cache=False)
    sweep = Sweep(benchmarks=("gsm_encode", "jpeg_encode"),
                  codings=("mom", "mom3d"), memsystems=("vector",))
    specs = sweep.specs()

    with background_server(engine, window=0.05) as server:
        print(f"service listening on {server.url}")
        client = ServiceClient(server.url)
        print(f"health: {client.health()['status']}")

        # 1. Several concurrent clients ask for the same grid...
        outcomes: list[dict] = []

        def one_client() -> None:
            outcomes.append(ServiceClient(server.url).run_many(specs))

        clients = [threading.Thread(target=one_client)
                   for _ in range(4)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()

        # 2. ...and the scheduler coalesced them onto one pass.
        stats = client.stats()
        print(f"\n{len(clients)} clients x {len(specs)} specs -> "
              f"engine {stats['engine']['simulations']} simulations, "
              f"scheduler coalesced "
              f"{stats['scheduler']['coalesced']} submissions into "
              f"{stats['scheduler']['batches']} batch(es)")

        # 3. Results are the engine's, bit for bit.
        local = Engine(jobs=2, use_cache=False).run_many(specs)
        assert all(outcomes[0][s].to_dict() == local[s].to_dict()
                   for s in specs), "wire results diverged!"
        print("wire results match in-process Engine.run_many exactly")

        print(f"\n{'spec':34s} {'cycles':>8s} {'eff bw':>7s}")
        for spec in specs:
            stats_for = outcomes[0][spec]
            print(f"{spec.label():34s} {stats_for.cycles:8d} "
                  f"{stats_for.effective_bandwidth:7.2f}")


if __name__ == "__main__":
    main()
