"""Quickstart: build a media workload, validate it, and time it on the
three memory-system designs the paper compares.

Run:  python examples/quickstart.py
"""

from repro.harness import Runner
from repro.models import run_power
from repro.workloads import get_benchmark


def main() -> None:
    # 1. Build the mpeg2 encoder trace in the MOM+3D coding and check
    #    it bit-for-bit against the numpy reference (motion vectors,
    #    DCT coefficients, quantized output).
    workload = get_benchmark("mpeg2_encode").build("mom3d")
    workload.run_functional()
    print(f"functional check passed: {workload.name}/{workload.coding} "
          f"({len(workload.program)} instructions)")

    # 2. Simulate the same benchmark on the paper's configurations.
    runner = Runner()
    baseline = runner.run("mpeg2_encode", "mom", "ideal")
    print(f"\n{'config':24s} {'cycles':>8s} {'slowdown':>9s} "
          f"{'words/acc':>10s} {'L2 power':>9s}")
    for coding, memsys in (("mom", "multibank"), ("mom", "vector"),
                           ("mom3d", "vector")):
        stats = runner.run("mpeg2_encode", coding, memsys)
        power = run_power(stats, memsys)
        label = f"{coding} + {memsys}"
        print(f"{label:24s} {stats.cycles:8d} "
              f"{stats.cycles / baseline.cycles:9.2f} "
              f"{stats.effective_bandwidth:10.2f} "
              f"{power.total:8.1f}W")

    # 3. The paper's claim in one sentence.
    vc = runner.run("mpeg2_encode", "mom", "vector")
    v3 = runner.run("mpeg2_encode", "mom3d", "vector")
    gain = 100 * (vc.cycles / v3.cycles - 1)
    saving = 100 * (1 - v3.l2_activity / vc.l2_activity)
    print(f"\n3D memory vectorization: +{gain:.0f}% performance, "
          f"-{saving:.0f}% L2 activity on the same vector cache.")


if __name__ == "__main__":
    main()
