"""Design-space exploration in ~30 lines.

Asks the acceptance-criterion question from ``docs/explore.md``:
over the Fig. 9 configuration space (3 codings x 3 memory systems),
what is the *cheapest register file* whose average slowdown stays
within 5% of the best observed — and how many of the 45 exhaustive
simulation points did answering it actually require?

The same query runs remotely with
``ServiceClient(url).run_explore(query)`` against ``repro serve``, or
from the shell as::

    repro explore -c mmx mom mom3d -m multibank vector ideal --within 5

Run:  python examples/explore_quickstart.py
"""

from repro.engine import Engine
from repro.explore import Constraint, ExploreQuery, explore


def main() -> None:
    query = ExploreQuery(
        codings=("mmx", "mom", "mom3d"),
        memsystems=("multibank", "vector", "ideal"),
        constraint=Constraint("slowdown", within=0.05),
        minimize="area_tracks",
    )
    report = explore(Engine(jobs=2), query)

    print("Pareto frontier (slowdown x L2 watts x area tracks):")
    for record in report.frontier:
        objectives = record.objectives
        print(f"  {record.candidate.label():16s} "
              f"slowdown {objectives.slowdown:5.2f}  "
              f"L2 {objectives.l2_watts:5.2f} W  "
              f"area {objectives.area_tracks:>9,.0f}")
    if report.best is not None:
        print(f"\ncheapest config with slowdown <= {report.bound:.3f}: "
              f"{report.best.candidate.label()}")
    stats = report.stats
    print(f"simulations requested: {stats.specs_requested} of "
          f"{stats.exhaustive_specs} exhaustive "
          f"({stats.specs_saved} saved by pruning)")


if __name__ == "__main__":
    main()
