"""Latency robustness (the paper's Fig. 10, plus the VIRAM scenario).

Sweeps the L2 latency from 20 to 100 cycles — past the paper's 60-cycle
point, toward the "processor-in-memory with no SRAM L2" regime it
mentions — and shows that the 3D extension's binding prefetch keeps the
degradation flat while plain MOM keeps losing ground.

Run:  python examples/latency_robustness.py
"""

from repro.harness import Runner
from repro.workloads import benchmark_names

LATENCIES = (20, 40, 60, 80, 100)


def main() -> None:
    runner = Runner()
    print(f"{'benchmark':14s} {'coding':6s} "
          + "".join(f"lat{lat:>4d} " for lat in LATENCIES))
    for bench in benchmark_names():
        rows = {}
        for coding in ("mom", "mom3d"):
            base = runner.run(bench, coding, "vector", 20).cycles
            rows[coding] = [
                runner.run(bench, coding, "vector", lat).cycles / base
                for lat in LATENCIES]
            cells = "".join(f"{x:7.2f} " for x in rows[coding])
            print(f"{bench:14s} {coding:6s} {cells}")
        gain = rows["mom"][-1] / rows["mom3d"][-1]
        print(f"{'':14s} -> at 100 cycles, 3D degrades "
              f"{100 * (gain - 1):.0f}% less\n")


if __name__ == "__main__":
    main()
