"""The paper's headline trade-off: +50% register-file area buys a 13%
average speedup and ~30% L2 power saving.

Reproduces the abstract's three numbers from the area model (Table 3),
the timing runs (Fig. 9) and the power model (Fig. 11).  All ten
simulation points go through one batched ``Engine.run_many`` call, so
the engine can group specs that share a trace into single grid-axis
passes (and a warm cache answers the whole grid without simulating).

Run:  python examples/power_area_tradeoff.py
"""

from repro.engine import RunSpec
from repro.harness import Runner
from repro.models import config_area, normalized_areas, run_power
from repro.workloads import benchmark_names


def main() -> None:
    # --- area: what the 3D register file costs -------------------------
    print("register-file area (square wire tracks):")
    for config in ("mmx", "mom", "mom3d"):
        areas = config_area(config)
        parts = ", ".join(f"{k} {v:,}" for k, v in areas.items()
                          if k != "total")
        print(f"  {config:6s} total {areas['total']:>9,}  ({parts})")
    norm = normalized_areas()
    overhead = 100 * (norm["mom3d"] - norm["mmx"])
    print(f"  -> 3D extension costs +{overhead:.0f}% area vs the "
          f"MMX-style register file (paper: +50%)\n")

    # --- performance and power: what it buys ---------------------------
    runner = Runner()

    def spec(bench: str, coding: str) -> RunSpec:
        return RunSpec(benchmark=bench, coding=coding, memsys="vector",
                       l2_latency=20, warm=True, seed=runner.seed)

    grid = [spec(bench, coding) for bench in benchmark_names()
            for coding in ("mom", "mom3d")]
    results = runner.engine.run_many(grid)

    speedups, vc_l2, d3_l2 = [], [], []
    print(f"{'benchmark':14s} {'vc cycles':>10s} {'3d cycles':>10s} "
          f"{'speedup':>8s} {'vc L2 W':>8s} {'3d L2 W':>8s}")
    for bench in benchmark_names():
        vc = results[spec(bench, "mom")]
        v3 = results[spec(bench, "mom3d")]
        p_vc = run_power(vc, "vector")
        p_3d = run_power(v3, "vector")
        speedups.append(vc.cycles / v3.cycles)
        vc_l2.append(p_vc.l2_watts)
        d3_l2.append(p_3d.l2_watts)
        print(f"{bench:14s} {vc.cycles:10d} {v3.cycles:10d} "
              f"{speedups[-1]:8.2f} {p_vc.l2_watts:8.2f} "
              f"{p_3d.l2_watts:8.2f}")

    avg_speedup = 100 * (sum(speedups) / len(speedups) - 1)
    avg_saving = 100 * (1 - sum(d3_l2) / sum(vc_l2))
    print(f"\naverage speedup {avg_speedup:.0f}% (paper: 13%), "
          f"L2 power saving {avg_saving:.0f}% (paper: 30%)")


if __name__ == "__main__":
    main()
